package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"gcao"
	"gcao/internal/obs"
	"gcao/internal/obs/reqtrace"
	"gcao/internal/sched"
)

// serverConfig are the daemon's tunables; main fills them from flags,
// tests construct them directly.
type serverConfig struct {
	// reqTimeout bounds one /compile request (and each /compile/batch
	// item) end to end.
	reqTimeout time.Duration
	// ringSize bounds the retained per-request decision logs.
	ringSize int
	// maxBody bounds a request body in bytes; a larger body is a 413.
	maxBody int64
	// cacheEntries and cacheBytes size each tier of the
	// content-addressed compilation cache.
	cacheEntries int
	cacheBytes   int64
	// workers and queueDepth bound the compile scheduler; admission
	// overflow is a 429.
	workers    int
	queueDepth int
	// flightSize bounds the flight recorder's main ring and its
	// slow/errored store; slowThreshold marks requests at or above it
	// for longer retention.
	flightSize    int
	slowThreshold time.Duration
	// liveInterval paces /debug/live snapshots (tests shorten it).
	liveInterval time.Duration
	// version identifies the build in /healthz, gcao_build_info and
	// the startup log.
	version string
	// logW + logLevel configure the structured event log.
	logW     io.Writer
	logLevel obs.Level
}

// server is the gcaod daemon state: one process-global metrics
// registry every request is absorbed into, the content-addressed
// compilation cache, the bounded compile scheduler, a bounded ring of
// recent request decision logs, the structured event log, and a
// request sequence for ids.
type server struct {
	cfg    serverConfig
	reg    *gcao.Registry
	cache  *gcao.Cache
	pool   *sched.Pool
	ring   *obs.DecisionRing
	flight *reqtrace.FlightRecorder
	log    *gcao.Logger
	start  time.Time
	seq    atomic.Int64
	// inflight counts HTTP requests currently inside the middleware.
	inflight atomic.Int64

	// testHook, when non-nil, runs at the start of every compile job;
	// tests use it to hold workers busy deterministically.
	testHook func()
}

func newServer(cfg serverConfig) *server {
	if cfg.reqTimeout <= 0 {
		cfg.reqTimeout = 30 * time.Second
	}
	if cfg.ringSize <= 0 {
		cfg.ringSize = 256
	}
	if cfg.maxBody <= 0 {
		cfg.maxBody = 4 << 20
	}
	if cfg.cacheEntries <= 0 {
		cfg.cacheEntries = 1024
	}
	if cfg.cacheBytes <= 0 {
		cfg.cacheBytes = 256 << 20
	}
	if cfg.workers <= 0 {
		cfg.workers = runtime.GOMAXPROCS(0)
	}
	if cfg.queueDepth <= 0 {
		cfg.queueDepth = 64
	}
	if cfg.flightSize <= 0 {
		cfg.flightSize = 256
	}
	if cfg.slowThreshold <= 0 {
		cfg.slowThreshold = 500 * time.Millisecond
	}
	if cfg.liveInterval <= 0 {
		cfg.liveInterval = time.Second
	}
	if cfg.version == "" {
		cfg.version = "dev"
	}
	var log *gcao.Logger
	if cfg.logW != nil {
		log = gcao.NewLogger(cfg.logW, cfg.logLevel)
	}
	s := &server{
		cfg:    cfg,
		reg:    gcao.NewRegistry(),
		cache:  gcao.NewCache(gcao.CacheOptions{MaxEntries: cfg.cacheEntries, MaxBytes: cfg.cacheBytes}),
		pool:   sched.New(cfg.workers, cfg.queueDepth),
		ring:   obs.NewDecisionRing(cfg.ringSize),
		flight: reqtrace.NewFlightRecorder(cfg.flightSize, cfg.flightSize, cfg.slowThreshold),
		log:    log,
		start:  time.Now(),
	}
	s.reg.SetCacheStatsFunc(s.cacheTierStats)
	s.reg.SetBuildInfo(cfg.version)
	s.reg.SetServerStatsFunc(s.serverStats)
	s.pool.SetQueueWaitObserver(func(d time.Duration) {
		s.reg.ObserveQueueWait(d.Seconds())
	})
	return s
}

// cacheTierStats adapts the cache snapshot to the registry's
// gcao_cache_* exposition families.
func (s *server) cacheTierStats() []obs.CacheTierStats {
	st := s.cache.Stats()
	tier := func(name string, t gcao.CacheTierStats) obs.CacheTierStats {
		return obs.CacheTierStats{
			Tier:          name,
			Entries:       t.Entries,
			Bytes:         t.Bytes,
			Hits:          t.Hits,
			Misses:        t.Misses,
			InflightWaits: t.InflightWaits,
			Evictions:     t.Evictions,
		}
	}
	return []obs.CacheTierStats{tier("compile", st.Compile), tier("place", st.Place)}
}

// close releases the worker pool; queued jobs fail with ErrClosed.
func (s *server) close() { s.pool.Close() }

// handler builds the daemon's route table, wrapped in the withObs
// ingress middleware (request ids, trace context, RED metrics). The
// per-request deadline lives inside handleCompile (a context, not
// http.TimeoutHandler, so timed-out responses still carry the request
// id).
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /compile", s.handleCompile)
	mux.HandleFunc("POST /compile/batch", s.handleCompileBatch)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /debug/cache", s.handleCacheStats)
	mux.HandleFunc("GET /debug/decisions", s.handleDecisionList)
	mux.HandleFunc("GET /debug/decisions/{id}", s.handleDecisions)
	mux.HandleFunc("GET /debug/critpath", s.handleCritPathList)
	mux.HandleFunc("GET /debug/critpath/{id}", s.handleCritPath)
	mux.HandleFunc("GET /debug/nativeprof", s.handleNativeProfList)
	mux.HandleFunc("GET /debug/nativeprof/{id}", s.handleNativeProf)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightList)
	mux.HandleFunc("GET /debug/flightrecorder/{id}", s.handleFlight)
	mux.HandleFunc("GET /debug/live", s.handleLive)
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s.withObs(mux)
}

// compileRequest is the POST /compile body (and one /compile/batch
// item).
type compileRequest struct {
	// Source is the mini-HPF text; Main selects the entry routine of a
	// multi-routine program (empty: Source is a single routine).
	Source string `json:"source"`
	Main   string `json:"main,omitempty"`
	// Params binds the routine's integer parameters; Procs is the
	// processor count.
	Params map[string]int `json:"params"`
	Procs  int            `json:"procs"`
	// Strategy is "orig", "nored" or "comb" (default comb), or "all"
	// to place every version of the one cached compilation
	// concurrently and report them side by side; Machine is "SP2" or
	// "NOW" (default SP2).
	Strategy string `json:"strategy,omitempty"`
	Machine  string `json:"machine,omitempty"`
	// Estimate adds the analytic cost model's verdict; Simulate runs
	// the functional simulator (small instances only — it executes the
	// program) and fills the communication profile.
	Estimate bool `json:"estimate,omitempty"`
	Simulate bool `json:"simulate,omitempty"`
	// Backend selects how Simulate executes the program: "sim" (the
	// default BSP simulator) or "native", which additionally runs the
	// placement as real goroutines and reports the measured wall clock
	// and message traffic.
	Backend string `json:"backend,omitempty"`
}

// compileResponse is the POST /compile result: the placement report,
// how the cache satisfied the request, plus the request's full metrics
// document.
type compileResponse struct {
	ReqID    string         `json:"req_id"`
	Strategy string         `json:"strategy"`
	Machine  string         `json:"machine"`
	Messages int            `json:"messages"`
	Counts   map[string]int `json:"counts"`
	Cache    *cacheDoc      `json:"cache,omitempty"`
	Estimate *estimateDoc   `json:"estimate,omitempty"`
	Simulate *simulateDoc   `json:"simulate,omitempty"`
	Native   *nativeDoc     `json:"native,omitempty"`
	// Versions holds the per-strategy reports of a strategy:"all"
	// request, in orig, nored, comb order.
	Versions []versionDoc   `json:"versions,omitempty"`
	Metrics  obs.MetricsDoc `json:"metrics"`
}

// versionDoc is one strategy's report inside a strategy:"all"
// response.
type versionDoc struct {
	Strategy string         `json:"strategy"`
	Messages int            `json:"messages"`
	Counts   map[string]int `json:"counts"`
	Place    string         `json:"place"` // cache outcome of this placement
	Estimate *estimateDoc   `json:"estimate,omitempty"`
}

// cacheDoc reports how each tier satisfied the request: "hit", "miss"
// or "dedup" (coalesced onto a concurrent identical request).
type cacheDoc struct {
	Compile string `json:"compile"`
	Place   string `json:"place"`
}

type estimateDoc struct {
	CPUSeconds float64 `json:"cpu_seconds"`
	NetSeconds float64 `json:"net_seconds"`
	Messages   float64 `json:"messages"`
	Bytes      float64 `json:"bytes"`
}

type simulateDoc struct {
	DynMessages int   `json:"dyn_messages"`
	BytesMoved  int64 `json:"bytes_moved"`
	Barriers    int   `json:"barriers"`
}

// nativeDoc reports a native-backend execution: measured wall clock,
// the traffic the goroutine fleet actually moved, and — since every
// daemon-served native run is profiled — the runtime profile's
// headline numbers: compute skew, total blocked time, and the machine
// constants fitted against the simulator's cost attribution (absent
// when the fit was degenerate).
type nativeDoc struct {
	Procs          int              `json:"procs"`
	Seconds        float64          `json:"seconds"`
	Messages       int64            `json:"messages"`
	BytesMoved     int64            `json:"bytes_moved"`
	WireBytes      int64            `json:"wire_bytes"`
	Hops           int64            `json:"collective_hops"`
	AllocBytes     int64            `json:"alloc_bytes"`
	Ops            map[string]int64 `json:"ops,omitempty"`
	SkewRatio      float64          `json:"skew_ratio,omitempty"`
	BlockedSeconds float64          `json:"blocked_seconds,omitempty"`
	FittedL        float64          `json:"fitted_l_seconds,omitempty"`
	FittedG        float64          `json:"fitted_g_seconds_per_byte,omitempty"`
	CalibR2        float64          `json:"calib_r2,omitempty"`
}

// execNative runs the placed program on the profiled native backend,
// calibrates the measured timings against the attribution record the
// preceding simulate phase left on the recorder, and feeds both the
// response document and the registry. The profile itself stays on the
// recorder for the metrics document, the Chrome trace, and the
// /debug/nativeprof retention ring.
func (s *server) execNative(placed *gcao.Placed, version string, procs int, rec *obs.Recorder, m gcao.Machine) (*nativeDoc, error) {
	nat, err := placed.RunNativeProfiled(procs, rec)
	if err != nil {
		return nil, badRequestError{fmt.Errorf("native: %w", err)}
	}
	doc := &nativeDoc{
		Procs:      nat.Stats.Procs,
		Seconds:    nat.Stats.ElapsedSeconds,
		Messages:   nat.Stats.Messages,
		BytesMoved: nat.Stats.Bytes,
		WireBytes:  nat.Stats.WireBytes,
		Hops:       nat.Stats.Hops,
		AllocBytes: nat.Stats.AllocBytes,
		Ops:        nat.Stats.Ops,
	}
	sample := obs.NativeExecSample{
		Seconds:    nat.Stats.ElapsedSeconds,
		Messages:   nat.Stats.Messages,
		WireBytes:  nat.Stats.WireBytes,
		Hops:       nat.Stats.Hops,
		AllocBytes: nat.Stats.AllocBytes,
	}
	if np := nat.Profile; np != nil {
		doc.SkewRatio = np.SkewRatio
		doc.BlockedSeconds = np.BlockedSeconds
		sample.SkewRatio = np.SkewRatio
		sample.BlockedSeconds = np.BlockedSeconds
		if run := rec.Attribution(); run != nil {
			c := np.Calibrate(obs.ModelSteps(run, gcao.AttrCostModelFor(m)))
			if !c.Degenerate && c.Mismatched == 0 {
				doc.FittedL, doc.FittedG, doc.CalibR2 = c.FittedL, c.FittedG, c.R2
				sample.FittedL, sample.FittedG = c.FittedL, c.FittedG
				sample.Calibrated = true
			}
		}
	}
	s.reg.ObserveNativeExec(version, sample)
	return doc, nil
}

func (s *server) handleCompile(w http.ResponseWriter, r *http.Request) {
	tr := reqtrace.FromContext(r.Context())
	id := tr.ReqID()
	root := tr.Root()
	t0 := time.Now()
	rec := obs.New()
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.reqTimeout)
	defer cancel()
	var resp *compileResponse
	req, err := decodeJSONBody[compileRequest](r, s.cfg.maxBody)
	if err == nil {
		// The queue.wait phase runs from admission until a worker picks
		// the job up; compile() opens the next phase at that instant.
		root.Phase("queue.wait")
		var v any
		v, err = s.pool.Submit(ctx, func(context.Context) (any, error) {
			return s.compile(id, rec, req, root)
		})
		if c, ok := v.(*compileResponse); ok {
			resp = c
		}
	}
	root.Phase("finalize")
	status := s.record(id, t0, rec, resp, err)
	s.log.Info("http.compile",
		obs.F("req", id), obs.F("status", status),
		obs.F("dur_us", time.Since(t0).Microseconds()))
	code := http.StatusOK
	if err != nil {
		code = s.writeError(w, id, err)
	} else {
		writeJSON(w, http.StatusOK, resp)
	}
	s.flightRecord(tr, "/compile", code, err, resp, t0)
}

// record absorbs one request's recorder into the registry, retains its
// decision log in the ring, and returns the status label.
func (s *server) record(id string, t0 time.Time, rec *obs.Recorder, resp *compileResponse, err error) string {
	status := "ok"
	if err != nil {
		status = "error"
	}
	s.reg.Absorb(rec, status)
	record := obs.RequestRecord{
		ID:         id,
		UnixNS:     t0.UnixNano(),
		Status:     status,
		Decision:   rec.Decisions(),
		Counters:   rec.Counters(),
		Attr:       rec.Attribution(),
		NativeProf: rec.NativeProfile(),
	}
	if resp != nil {
		record.Strategy = resp.Strategy
	}
	if err != nil {
		record.Error = err.Error()
	}
	s.ring.Add(record)
	return status
}

// badRequestError marks client-side failures (malformed body, unknown
// strategy/machine, source that does not compile).
type badRequestError struct{ err error }

func (e badRequestError) Error() string { return e.err.Error() }
func (e badRequestError) Unwrap() error { return e.err }

// payloadTooLargeError marks a body that tripped MaxBytesReader.
type payloadTooLargeError struct{ err error }

func (e payloadTooLargeError) Error() string { return e.err.Error() }
func (e payloadTooLargeError) Unwrap() error { return e.err }

func httpStatus(err error) int {
	var big payloadTooLargeError
	if errors.As(err, &big) {
		return http.StatusRequestEntityTooLarge
	}
	var bad badRequestError
	if errors.As(err, &bad) {
		return http.StatusBadRequest
	}
	switch {
	case errors.Is(err, sched.ErrQueueFull):
		return http.StatusTooManyRequests
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		return http.StatusServiceUnavailable
	case errors.Is(err, sched.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// writeError maps an error to its status and JSON body (which always
// carries the request id); queue overflows carry a Retry-After derived
// from the scheduler's drain estimate so well-behaved clients back off
// proportionally to the actual backlog.
func (s *server) writeError(w http.ResponseWriter, id string, err error) int {
	code := httpStatus(err)
	if code == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfter()))
	}
	writeJSON(w, code, map[string]string{"req_id": id, "error": err.Error()})
	return code
}

// writeErrMsg writes a plain error body carrying the middleware's
// request id, for handler-local failures (bad query params, unknown
// ids).
func (s *server) writeErrMsg(w http.ResponseWriter, r *http.Request, code int, msg string) {
	writeJSON(w, code, map[string]string{"req_id": reqID(r), "error": msg})
}

// decodeJSONBody decodes a bounded request body, classifying oversized
// bodies (413) apart from malformed ones (400).
func decodeJSONBody[T any](r *http.Request, maxBody int64) (T, error) {
	var v T
	body := http.MaxBytesReader(nil, r.Body, maxBody)
	if err := json.NewDecoder(body).Decode(&v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			return v, payloadTooLargeError{fmt.Errorf("request body exceeds %d bytes", maxBody)}
		}
		return v, badRequestError{fmt.Errorf("decoding request: %w", err)}
	}
	return v, nil
}

// compile runs one request through the cached pipeline with a
// request-scoped recorder attached. root is the request's span; the
// phases opened here (compile, place, estimate, simulate) tile it
// gap-free after the handler's queue.wait, so their durations account
// for the request's wall time.
func (s *server) compile(id string, rec *obs.Recorder, req compileRequest, root *reqtrace.Span) (*compileResponse, error) {
	ph := root.Phase("compile")
	if s.testHook != nil {
		s.testHook()
	}
	all := req.Strategy == "all"
	var strategy gcao.Strategy
	if !all {
		var err error
		strategy, err = gcao.StrategyByName(req.Strategy)
		if err != nil {
			return nil, badRequestError{err}
		}
	}
	machineName := req.Machine
	if machineName == "" {
		machineName = "SP2"
	}
	m, err := gcao.MachineByName(machineName)
	if err != nil {
		return nil, badRequestError{err}
	}
	if req.Backend != "" && req.Backend != "sim" && req.Backend != "native" {
		return nil, badRequestError{fmt.Errorf("unknown backend %q (want sim or native)", req.Backend)}
	}
	cfg := gcao.Config{
		Params: req.Params,
		Procs:  req.Procs,
		Obs:    rec,
		Log:    s.log,
		ReqID:  id,
	}
	var (
		c       *gcao.Compilation
		compOut gcao.CacheOutcome
	)
	if req.Main != "" {
		c, compOut, err = s.cache.CompileProgram(req.Source, req.Main, cfg)
	} else {
		c, compOut, err = s.cache.Compile(req.Source, cfg)
	}
	if err != nil {
		return nil, badRequestError{err}
	}
	ph.SetAttr("cache", compOut.String())
	if all {
		return s.placeAll(id, rec, req, c, compOut, m, root)
	}
	pp := root.Phase("place")
	placed, placeOut, err := s.cache.Place(c, strategy, gcao.PlacementOptions{}, rec)
	if err != nil {
		return nil, badRequestError{err}
	}
	pp.SetAttr("cache", placeOut.String())
	resp := &compileResponse{
		ReqID:    id,
		Strategy: strategy.String(),
		Machine:  m.Name,
		Messages: placed.Messages(),
		Counts:   map[string]int{},
		Cache:    &cacheDoc{Compile: compOut.String(), Place: placeOut.String()},
	}
	for kind, n := range placed.MessageCounts() {
		resp.Counts[kind.String()] = n
	}
	if req.Estimate {
		root.Phase("estimate")
		cost, err := placed.Estimate(m)
		if err != nil {
			return nil, badRequestError{fmt.Errorf("estimate: %w", err)}
		}
		resp.Estimate = &estimateDoc{
			CPUSeconds: cost.CPU, NetSeconds: cost.Net,
			Messages: cost.Messages, Bytes: cost.Bytes,
		}
		// Estimate-only requests still feed the bytes-moved histogram
		// and the optimality-gap gauges.
		s.reg.ObserveBytes(strategy.String(), cost.Bytes)
		s.reg.SetOptimalityGap(c.Analysis.Unit.Routine.Name, strategy.String(),
			c.LowerBound().TotalBytes, cost.Bytes)
	}
	if req.Simulate {
		root.Phase("simulate")
		procs := c.Analysis.Unit.Grid.NumProcs()
		run, err := placed.SimulateObs(m, procs, rec)
		if err != nil {
			return nil, badRequestError{fmt.Errorf("simulate: %w", err)}
		}
		resp.Simulate = &simulateDoc{
			DynMessages: run.Ledger.DynMessages,
			BytesMoved:  int64(run.Ledger.BytesMoved),
			Barriers:    run.Ledger.Barriers,
		}
		if req.Backend == "native" {
			root.Phase("native.exec")
			resp.Native, err = s.execNative(placed, strategy.String(), procs, rec, m)
			if err != nil {
				return nil, err
			}
		}
	}
	resp.Metrics = rec.Doc()
	return resp, nil
}

// placeAll places the three strategies of one cached compilation
// concurrently: the placements are independent (the analysis's
// loop-bound memoization is mutex-guarded, the recorder is
// thread-safe) so the request pays for the slowest placement instead
// of the sum. Plain goroutines, not pool.Submit — this already runs
// on a pool worker, and re-submitting from inside a worker can
// deadlock a full queue.
func (s *server) placeAll(id string, rec *obs.Recorder, req compileRequest, c *gcao.Compilation, compOut gcao.CacheOutcome, m gcao.Machine, root *reqtrace.Span) (*compileResponse, error) {
	root.Phase("place")
	strategies := []gcao.Strategy{gcao.Vectorize, gcao.EarliestRedundancy, gcao.Combine}
	type placeOut struct {
		placed *gcao.Placed
		out    gcao.CacheOutcome
		err    error
	}
	outs := make([]placeOut, len(strategies))
	var wg sync.WaitGroup
	for i, strat := range strategies {
		wg.Add(1)
		go func(i int, strat gcao.Strategy) {
			defer wg.Done()
			p, o, err := s.cache.Place(c, strat, gcao.PlacementOptions{}, rec)
			outs[i] = placeOut{placed: p, out: o, err: err}
		}(i, strat)
	}
	wg.Wait()
	for i, o := range outs {
		if o.err != nil {
			return nil, badRequestError{fmt.Errorf("%s: %w", strategies[i], o.err)}
		}
	}
	resp := &compileResponse{
		ReqID:    id,
		Strategy: "all",
		Machine:  m.Name,
		Cache:    &cacheDoc{Compile: compOut.String()},
	}
	lb := c.LowerBound()
	for i, strat := range strategies {
		doc := versionDoc{
			Strategy: strat.String(),
			Messages: outs[i].placed.Messages(),
			Counts:   map[string]int{},
			Place:    outs[i].out.String(),
		}
		for kind, n := range outs[i].placed.MessageCounts() {
			doc.Counts[kind.String()] = n
		}
		if req.Estimate {
			cost, err := outs[i].placed.Estimate(m)
			if err != nil {
				return nil, badRequestError{fmt.Errorf("estimate %s: %w", strat, err)}
			}
			doc.Estimate = &estimateDoc{
				CPUSeconds: cost.CPU, NetSeconds: cost.Net,
				Messages: cost.Messages, Bytes: cost.Bytes,
			}
			s.reg.ObserveBytes(strat.String(), cost.Bytes)
			s.reg.SetOptimalityGap(c.Analysis.Unit.Routine.Name, strat.String(),
				lb.TotalBytes, cost.Bytes)
		}
		resp.Versions = append(resp.Versions, doc)
	}
	// Surface the paper's algorithm (comb) in the scalar fields so
	// clients that ignore Versions still see the best placement.
	last := resp.Versions[len(resp.Versions)-1]
	resp.Messages = last.Messages
	resp.Counts = last.Counts
	if req.Simulate {
		root.Phase("simulate")
		procs := c.Analysis.Unit.Grid.NumProcs()
		run, err := outs[len(outs)-1].placed.SimulateObs(m, procs, rec)
		if err != nil {
			return nil, badRequestError{fmt.Errorf("simulate: %w", err)}
		}
		resp.Simulate = &simulateDoc{
			DynMessages: run.Ledger.DynMessages,
			BytesMoved:  int64(run.Ledger.BytesMoved),
			Barriers:    run.Ledger.Barriers,
		}
		if req.Backend == "native" {
			root.Phase("native.exec")
			resp.Native, err = s.execNative(outs[len(outs)-1].placed, gcao.Combine.String(), procs, rec, m)
			if err != nil {
				return nil, err
			}
		}
	}
	resp.Metrics = rec.Doc()
	return resp, nil
}

func (s *server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	if err := s.reg.WritePrometheus(w); err != nil {
		s.log.Error("http.metrics", obs.F("err", err.Error()))
	}
}

func (s *server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"version":        s.cfg.version,
		"go":             runtime.Version(),
		"uptime_seconds": time.Since(s.start).Seconds(),
		"requests":       s.reg.Requests(),
	})
}

// handleCacheStats serves the cache tiers' and scheduler's counters as
// JSON for operators (the same numbers /metrics exposes for scraping).
func (s *server) handleCacheStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"cache":     s.cache.Stats(),
		"scheduler": s.pool.Stats(),
		"flight":    s.flight.Stats(),
	})
}

// defaultListLimit bounds /debug/decisions and /debug/critpath
// listings when the client does not pass ?limit=N: enough to page
// through recent traffic without dumping the whole ring.
const defaultListLimit = 50

// listLimit parses ?limit=N (default defaultListLimit; limit=0 or a
// negative value returns everything retained).
func listLimit(r *http.Request) (int, error) {
	q := r.URL.Query().Get("limit")
	if q == "" {
		return defaultListLimit, nil
	}
	n, err := strconv.Atoi(q)
	if err != nil {
		return 0, fmt.Errorf("bad limit %q: %v", q, err)
	}
	return n, nil
}

func (s *server) handleDecisionList(w http.ResponseWriter, r *http.Request) {
	limit, err := listLimit(r)
	if err != nil {
		s.writeErrMsg(w, r, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ids":      s.ring.RecentIDs(limit),
		"retained": s.ring.Len(),
	})
}

func (s *server) handleDecisions(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.ring.Get(id)
	if !ok {
		s.writeErrMsg(w, r, http.StatusNotFound, "no retained request "+id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// handleCritPathList lists the retained requests that carry a
// simulator attribution record (only simulated requests do).
func (s *server) handleCritPathList(w http.ResponseWriter, r *http.Request) {
	limit, err := listLimit(r)
	if err != nil {
		s.writeErrMsg(w, r, http.StatusBadRequest, err.Error())
		return
	}
	var ids []string
	for _, id := range s.ring.RecentIDs(0) {
		if limit > 0 && len(ids) >= limit {
			break
		}
		if rec, ok := s.ring.Get(id); ok && rec.Attr != nil {
			ids = append(ids, id)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ids":      ids,
		"retained": s.ring.Len(),
	})
}

// handleCritPath serves the analyzed attribution report of one
// retained request: the per-site blame ranking and the communication
// critical path. ?g= and ?L= override the BSP cost model knobs
// (seconds per byte and seconds per superstep).
func (s *server) handleCritPath(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.ring.Get(id)
	if !ok {
		s.writeErrMsg(w, r, http.StatusNotFound, "no retained request "+id)
		return
	}
	if rec.Attr == nil {
		s.writeErrMsg(w, r, http.StatusNotFound,
			"request "+id+" has no attribution record (simulate was not requested)")
		return
	}
	model := gcao.DefaultAttrCostModel()
	if q := r.URL.Query().Get("g"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			s.writeErrMsg(w, r, http.StatusBadRequest, "bad g "+q)
			return
		}
		model.GSecPerByte = v
	}
	if q := r.URL.Query().Get("L"); q != "" {
		v, err := strconv.ParseFloat(q, 64)
		if err != nil || v < 0 {
			s.writeErrMsg(w, r, http.StatusBadRequest, "bad L "+q)
			return
		}
		model.LSec = v
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"req_id": id,
		"report": gcao.AnalyzeAttribution(rec.Attr, model),
	})
}

// handleNativeProfList lists the retained requests that carry a native
// runtime profile (only backend:"native" requests do).
func (s *server) handleNativeProfList(w http.ResponseWriter, r *http.Request) {
	limit, err := listLimit(r)
	if err != nil {
		s.writeErrMsg(w, r, http.StatusBadRequest, err.Error())
		return
	}
	var ids []string
	for _, id := range s.ring.RecentIDs(0) {
		if limit > 0 && len(ids) >= limit {
			break
		}
		if rec, ok := s.ring.Get(id); ok && rec.NativeProf != nil {
			ids = append(ids, id)
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"ids":      ids,
		"retained": s.ring.Len(),
	})
}

// handleNativeProf serves one retained request's native runtime
// profile: per-superstep per-processor timelines, the wait accounting,
// compute skew and straggler ranking, and — when the request also
// simulated — the measured-vs-modeled calibration, refit on demand
// against the attribution record retained alongside it.
func (s *server) handleNativeProf(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.ring.Get(id)
	if !ok {
		s.writeErrMsg(w, r, http.StatusNotFound, "no retained request "+id)
		return
	}
	if rec.NativeProf == nil {
		s.writeErrMsg(w, r, http.StatusNotFound,
			"request "+id+" has no native profile (backend native was not requested)")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"req_id":  id,
		"profile": rec.NativeProf,
	})
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}
