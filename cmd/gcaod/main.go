// gcaod is the serving-mode daemon of the reproduction: a long-lived
// HTTP service that compiles mini-HPF routines on demand and makes the
// observability layer externally consumable — the step from PR 1's
// per-process recorder to telemetry that survives the request.
//
// Endpoints:
//
//	POST /compile              source in, placement report + metrics doc out
//	GET  /metrics              Prometheus text exposition of the global registry
//	GET  /healthz              liveness + uptime + request count
//	GET  /debug/decisions      ids of the retained per-request decision logs
//	GET  /debug/decisions/{id} one request's full placement decision log
//	GET  /debug/pprof/...      net/http/pprof
//
// The daemon shuts down gracefully on SIGINT/SIGTERM and bounds every
// /compile request with -timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"gcao/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compile timeout")
	ringSize := flag.Int("ring", 256, "retained per-request decision logs")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug, info, warn, error")
	flag.Parse()

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	s := newServer(serverConfig{
		reqTimeout: *timeout,
		ringSize:   *ringSize,
		logW:       os.Stderr,
		logLevel:   level,
	})
	srv := &http.Server{Addr: *addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	s.log.Info("gcaod.start", obs.F("addr", *addr), obs.F("timeout", timeout.String()))

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	s.log.Info("gcaod.shutdown", obs.F("requests", s.reg.Requests()))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcaod:", err)
	os.Exit(1)
}
