// gcaod is the serving-mode daemon of the reproduction: a long-lived
// HTTP service that compiles mini-HPF routines on demand and makes the
// observability layer externally consumable — the step from PR 1's
// per-process recorder to telemetry that survives the request.
//
// Endpoints:
//
//	POST /compile                    source in, placement report + metrics doc out
//	POST /compile/batch              many compile requests through the bounded scheduler
//	GET  /metrics                    Prometheus text exposition of the global registry
//	GET  /healthz                    liveness + version + uptime + request count
//	GET  /debug/cache                compilation-cache, scheduler and flight-recorder counters
//	GET  /debug/decisions            ids of the retained per-request decision logs
//	GET  /debug/decisions/{id}       one request's full placement decision log
//	GET  /debug/critpath             ids of the retained simulator attribution records
//	GET  /debug/critpath/{id}        one request's blame ranking and critical path
//	GET  /debug/flightrecorder       recent and slow/errored request summaries
//	GET  /debug/flightrecorder/{id}  one request's phase summary and span tree
//	GET  /debug/live                 server-sent-event stream of live ops snapshots
//	GET  /debug/pprof/...            net/http/pprof
//
// Every response carries an X-Request-Id header and a W3C traceparent
// (ingested from the client's, or minted); error bodies repeat the id
// so a failure report is joinable against the flight recorder
// (/debug/flightrecorder/{id} resolves the id to a span tree showing
// where the request's wall time went: queue wait, cache probe +
// compile, place, simulate).
//
// Repeated and concurrent identical requests are served from a
// content-addressed compilation cache (-cache-entries, -cache-bytes);
// compile work runs on a bounded worker pool (-workers, -queue-depth)
// that sheds load with 429 when the admission queue is full, with a
// Retry-After derived from the scheduler's own drain estimate. The
// daemon shuts down gracefully on SIGINT/SIGTERM and bounds every
// compile with -timeout.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime/debug"
	"syscall"
	"time"

	"gcao/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	timeout := flag.Duration("timeout", 30*time.Second, "per-request compile timeout")
	ringSize := flag.Int("ring", 256, "retained per-request decision logs")
	logLevel := flag.String("log-level", "info", "structured log threshold: debug, info, warn, error")
	cacheEntries := flag.Int("cache-entries", 1024, "max entries per compilation-cache tier")
	cacheBytes := flag.Int64("cache-bytes", 256<<20, "max estimated bytes per compilation-cache tier")
	workers := flag.Int("workers", 0, "compile worker goroutines (0: GOMAXPROCS)")
	queueDepth := flag.Int("queue-depth", 64, "compile admission queue depth; overflow is a 429")
	flightSize := flag.Int("flight", 256, "flight-recorder ring size (and slow-store size)")
	slowThreshold := flag.Duration("slow-threshold", 500*time.Millisecond, "wall time at or above which a request's trace is retained as slow")
	showVersion := flag.Bool("version", false, "print build version and exit")
	flag.Parse()

	version := buildVersion()
	if *showVersion {
		fmt.Println("gcaod", version)
		return
	}

	level, err := obs.ParseLevel(*logLevel)
	if err != nil {
		fatal(err)
	}
	s := newServer(serverConfig{
		reqTimeout:    *timeout,
		ringSize:      *ringSize,
		cacheEntries:  *cacheEntries,
		cacheBytes:    *cacheBytes,
		workers:       *workers,
		queueDepth:    *queueDepth,
		flightSize:    *flightSize,
		slowThreshold: *slowThreshold,
		version:       version,
		logW:          os.Stderr,
		logLevel:      level,
	})
	defer s.close()
	srv := &http.Server{Addr: *addr, Handler: s.handler()}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	s.log.Info("gcaod.start",
		obs.F("addr", *addr), obs.F("version", version),
		obs.F("timeout", timeout.String()),
		obs.F("cache_entries", s.cfg.cacheEntries),
		obs.F("cache_bytes", s.cfg.cacheBytes),
		obs.F("workers", s.cfg.workers),
		obs.F("queue_depth", s.cfg.queueDepth))

	select {
	case err := <-errCh:
		fatal(err)
	case <-ctx.Done():
	}
	s.log.Info("gcaod.shutdown", obs.F("requests", s.reg.Requests()))
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

// buildVersion derives a build identity from the embedded VCS stamp:
// the short revision (with a -dirty suffix for modified trees), or
// "dev" when the binary was built without VCS information.
func buildVersion() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dev"
	}
	var rev, dirty string
	for _, kv := range info.Settings {
		switch kv.Key {
		case "vcs.revision":
			rev = kv.Value
		case "vcs.modified":
			if kv.Value == "true" {
				dirty = "-dirty"
			}
		}
	}
	if rev == "" {
		return "dev"
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	return rev + dirty
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "gcaod:", err)
	os.Exit(1)
}
