package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"gcao"
	"gcao/internal/obs"
)

// getJSON fetches a URL and decodes its body into out, returning the
// status code.
func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decoding %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

// TestCritPathEndpoint: a simulated compile leaves an attribution
// record behind; /debug/critpath lists it and /debug/critpath/{id}
// serves the analyzed blame report, with ?g/?L overriding the BSP
// cost model.
func TestCritPathEndpoint(t *testing.T) {
	_, ts := testServer(t)
	// One plain compile (no attribution) and one simulated compile.
	respPlain, outPlain := postCompile(t, ts, map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 8, "steps": 1},
		"procs":  4,
	})
	if respPlain.StatusCode != http.StatusOK {
		t.Fatalf("plain compile status = %d", respPlain.StatusCode)
	}
	respSim, outSim := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 8, "steps": 2},
		"procs":    4,
		"simulate": true,
	})
	if respSim.StatusCode != http.StatusOK {
		t.Fatalf("simulated compile status = %d", respSim.StatusCode)
	}

	// The critpath list contains only the simulated request; the
	// decisions list contains both.
	var list struct {
		IDs      []string `json:"ids"`
		Retained int      `json:"retained"`
	}
	if code := getJSON(t, ts.URL+"/debug/critpath", &list); code != http.StatusOK {
		t.Fatalf("critpath list status = %d", code)
	}
	if len(list.IDs) != 1 || list.IDs[0] != outSim.ReqID || list.Retained != 2 {
		t.Fatalf("critpath list = %+v (sim req %s)", list, outSim.ReqID)
	}

	var detail struct {
		ReqID  string           `json:"req_id"`
		Report *gcao.AttrReport `json:"report"`
	}
	if code := getJSON(t, ts.URL+"/debug/critpath/"+outSim.ReqID, &detail); code != http.StatusOK {
		t.Fatalf("critpath detail status = %d", code)
	}
	rep := detail.Report
	if detail.ReqID != outSim.ReqID || rep == nil {
		t.Fatalf("critpath detail = %+v", detail)
	}
	if rep.TotalSteps == 0 || rep.TotalBytes == 0 || len(rep.Sites) == 0 || len(rep.CriticalPath) == 0 {
		t.Fatalf("report empty: %+v", rep)
	}
	if rep.CriticalSec <= 0 || rep.CriticalSec > rep.SerialSec {
		t.Fatalf("critical %g vs serial %g", rep.CriticalSec, rep.SerialSec)
	}
	if !strings.Contains(rep.Sites[0].Site, "/g") {
		t.Fatalf("top site %q is not a placement site id", rep.Sites[0].Site)
	}

	// Cost-model overrides flow into the report: with g=0 and a huge L
	// every superstep costs L, so the critical path cost is steps*L.
	var cheap struct {
		Report *gcao.AttrReport `json:"report"`
	}
	url := fmt.Sprintf("%s/debug/critpath/%s?g=0&L=1", ts.URL, outSim.ReqID)
	if code := getJSON(t, url, &cheap); code != http.StatusOK {
		t.Fatalf("override status = %d", code)
	}
	if cheap.Report.Model.GSecPerByte != 0 || cheap.Report.Model.LSec != 1 {
		t.Fatalf("override model = %+v", cheap.Report.Model)
	}
	if got := cheap.Report.CriticalSec; got != float64(len(cheap.Report.CriticalPath)) {
		t.Fatalf("with g=0, L=1: critical = %g, path length %d", got, len(cheap.Report.CriticalPath))
	}

	// Error paths: bad model knob, non-simulated request, unknown id.
	if code := getJSON(t, ts.URL+"/debug/critpath/"+outSim.ReqID+"?g=banana", nil); code != http.StatusBadRequest {
		t.Fatalf("bad g status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/critpath/"+outSim.ReqID+"?L=-1", nil); code != http.StatusBadRequest {
		t.Fatalf("negative L status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/critpath/"+outPlain.ReqID, nil); code != http.StatusNotFound {
		t.Fatalf("non-simulated request status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/critpath/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/critpath?limit=frog", nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", code)
	}
}

// TestDecisionListLimit pins the ?limit=N paging of /debug/decisions:
// default bounded, explicit limit honored, limit=0 returns everything
// retained, garbage is a 400.
func TestDecisionListLimit(t *testing.T) {
	s, _ := testServer(t)
	// Bypass HTTP for seeding: fill the ring directly past the default
	// page size would be overkill; three records suffice to see paging.
	ids := []string{"r1", "r2", "r3"}
	for _, id := range ids {
		s.ring.Add(obs.RequestRecord{ID: id, Status: "ok"})
	}
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	var list struct {
		IDs      []string `json:"ids"`
		Retained int      `json:"retained"`
	}
	if code := getJSON(t, ts.URL+"/debug/decisions", &list); code != http.StatusOK {
		t.Fatalf("default list status = %d", code)
	}
	if len(list.IDs) != 3 || list.IDs[0] != "r3" || list.Retained != 3 {
		t.Fatalf("default list = %+v", list)
	}
	if code := getJSON(t, ts.URL+"/debug/decisions?limit=2", &list); code != http.StatusOK {
		t.Fatalf("limit=2 status = %d", code)
	}
	if len(list.IDs) != 2 || list.IDs[0] != "r3" || list.IDs[1] != "r2" || list.Retained != 3 {
		t.Fatalf("limit=2 list = %+v", list)
	}
	if code := getJSON(t, ts.URL+"/debug/decisions?limit=0", &list); code != http.StatusOK {
		t.Fatalf("limit=0 status = %d", code)
	}
	if len(list.IDs) != 3 {
		t.Fatalf("limit=0 list = %+v", list)
	}
	if code := getJSON(t, ts.URL+"/debug/decisions?limit=two", nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", code)
	}
}
