package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"gcao"
	"gcao/internal/obs"
	"gcao/internal/obs/reqtrace"
	"gcao/internal/sched"
)

// liveDoc is one /debug/live snapshot: the numbers an operator
// watches while a saturation or regression develops, assembled from
// the registry, cache, scheduler and flight recorder. gcaotop renders
// the same document.
type liveDoc struct {
	UnixNS        int64   `json:"unix_ns"`
	Version       string  `json:"version"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	// ReqPerSec is the HTTP request rate since the previous snapshot
	// of this stream (0 on the first event).
	ReqPerSec float64 `json:"req_per_sec"`
	Inflight  int64   `json:"inflight"`
	// Routes carries per-route request counts and interpolated latency
	// quantiles; Codes sums responses by status code across routes.
	Routes []obs.RouteStat  `json:"routes"`
	Codes  map[string]int64 `json:"codes"`
	// CacheHitRate is the compile tier's hits/(hits+misses); 0 before
	// any lookup.
	CacheHitRate   float64              `json:"cache_hit_rate"`
	Cache          gcao.CacheStats      `json:"cache"`
	Sched          sched.Stats          `json:"scheduler"`
	QueueWaitP50ms float64              `json:"queue_wait_p50_ms"`
	QueueWaitP99ms float64              `json:"queue_wait_p99_ms"`
	Flight         reqtrace.FlightStats `json:"flight"`
	// GapRatio aggregates estimated traffic over the communication
	// lower bound across the benchmark×version pairs this daemon has
	// compiled; GapPoints counts those pairs (0 until one is measured).
	GapRatio  float64 `json:"gap_ratio"`
	GapPoints int     `json:"gap_points"`
	// Native summarizes the profiled native-backend runs this daemon
	// has executed (absent until one happens): run count, worst compute
	// skew, accumulated blocked time, fitted machine constants.
	Native *obs.NativeLiveStats `json:"native,omitempty"`
}

// liveSnapshot assembles one liveDoc. prevTotal is the previous
// snapshot's summed request count (-1 on the first event) and dt the
// time since it, for the rate.
func (s *server) liveSnapshot(prevTotal int64, dt time.Duration) (liveDoc, int64) {
	codes := s.reg.HTTPCodeTotals()
	var total int64
	for _, n := range codes {
		total += n
	}
	cache := s.cache.Stats()
	doc := liveDoc{
		UnixNS:         time.Now().UnixNano(),
		Version:        s.cfg.version,
		UptimeSeconds:  time.Since(s.start).Seconds(),
		Inflight:       s.inflight.Load(),
		Routes:         s.reg.HTTPRouteStats(),
		Codes:          codes,
		Cache:          cache,
		Sched:          s.pool.Stats(),
		QueueWaitP50ms: s.reg.QueueWaitQuantile(0.50) * 1e3,
		QueueWaitP99ms: s.reg.QueueWaitQuantile(0.99) * 1e3,
		Flight:         s.flight.Stats(),
	}
	doc.GapRatio, doc.GapPoints = s.reg.AggregateGap()
	if nat, ok := s.reg.NativeLive(); ok {
		doc.Native = &nat
	}
	if lookups := cache.Compile.Hits + cache.Compile.Misses; lookups > 0 {
		doc.CacheHitRate = float64(cache.Compile.Hits) / float64(lookups)
	}
	if prevTotal >= 0 && dt > 0 {
		doc.ReqPerSec = float64(total-prevTotal) / dt.Seconds()
	}
	return doc, total
}

// handleLive streams registry snapshots as server-sent events, one
// per -live-interval tick (the first immediately), until the client
// disconnects or the ?n=N event budget is spent. Plain `curl -N` or
// gcaotop are sufficient clients.
func (s *server) handleLive(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		s.writeErrMsg(w, r, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	n := 0
	if q := r.URL.Query().Get("n"); q != "" {
		v, err := strconv.Atoi(q)
		if err != nil || v < 0 {
			s.writeErrMsg(w, r, http.StatusBadRequest, "bad n "+q)
			return
		}
		n = v
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	ticker := time.NewTicker(s.cfg.liveInterval)
	defer ticker.Stop()
	prevTotal := int64(-1)
	last := time.Now()
	for i := 0; n == 0 || i < n; i++ {
		now := time.Now()
		doc, total := s.liveSnapshot(prevTotal, now.Sub(last))
		prevTotal, last = total, now
		data, err := json.Marshal(doc)
		if err != nil {
			return
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return
		}
		fl.Flush()
		if n != 0 && i == n-1 {
			return
		}
		select {
		case <-r.Context().Done():
			return
		case <-ticker.C:
		}
	}
}
