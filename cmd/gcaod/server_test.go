package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"gcao/internal/obs"
)

const stencilSrc = `
routine smooth(n, steps)
real a(0:n+1, 0:n+1), b(0:n+1, 0:n+1)
!hpf$ distribute (block, block) :: a, b
do i = 0, n + 1
do j = 0, n + 1
a(i, j) = 1.0 + i * 0.1 + j * 0.01
b(i, j) = 0.0
enddo
enddo
do it = 1, steps
do i = 1, n
do j = 1, n
b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
enddo
enddo
do i = 1, n
do j = 1, n
a(i, j) = b(i, j)
enddo
enddo
enddo
end
`

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(serverConfig{
		reqTimeout: 30 * time.Second,
		ringSize:   8,
		logW:       io.Discard,
		logLevel:   obs.LevelDebug,
	})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, ts *httptest.Server, body map[string]any) (*http.Response, compileResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out compileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding compile response: %v", err)
		}
	}
	return resp, out
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 12, "steps": 2},
		"procs":    4,
		"strategy": "comb",
		"estimate": true,
		"simulate": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	if out.ReqID == "" || out.Strategy != "comb" || out.Machine != "SP2" {
		t.Fatalf("response header wrong: %+v", out)
	}
	if out.Messages <= 0 || out.Counts["NNC"] <= 0 {
		t.Fatalf("no placed messages reported: %+v", out)
	}
	if out.Estimate == nil || out.Estimate.NetSeconds <= 0 {
		t.Fatalf("estimate missing: %+v", out.Estimate)
	}
	if out.Simulate == nil || out.Simulate.DynMessages <= 0 || out.Simulate.BytesMoved <= 0 {
		t.Fatalf("simulation missing: %+v", out.Simulate)
	}
	if len(out.Metrics.Decisions) == 0 || out.Metrics.Counters["place.comb.groups"] <= 0 {
		t.Fatalf("metrics doc incomplete: %d decisions, counters %v",
			len(out.Metrics.Decisions), out.Metrics.Counters)
	}
	if out.Metrics.Profile == nil {
		t.Fatal("simulated request lost its communication profile")
	}
}

// TestMetricsAfterCompile is the acceptance check: after one /compile,
// GET /metrics returns parseable Prometheus text exposition containing
// phase-latency histogram samples and placement counters.
func TestMetricsAfterCompile(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := postCompile(t, ts, map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 12, "steps": 2},
		"procs":  4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mResp.StatusCode)
	}
	if ct := mResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	text, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPromText(text); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, text)
	}
	for _, want := range []string{
		`gcao_requests_total{status="ok"} 1`,
		`gcao_phase_seconds_bucket{phase="parse",le="+Inf"} 1`,
		`gcao_phase_seconds_bucket{phase="place:comb"`,
		`gcao_pipeline_counter_total{name="place.comb.groups"}`,
		`gcao_pipeline_counter_total{name="analysis.comm_entries"}`,
		`gcao_placed_messages_count{version="comb"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDecisionDebugEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postCompile(t, ts, map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 12, "steps": 2},
		"procs":  4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	dResp, err := http.Get(ts.URL + "/debug/decisions/" + out.ReqID)
	if err != nil {
		t.Fatal(err)
	}
	defer dResp.Body.Close()
	if dResp.StatusCode != http.StatusOK {
		t.Fatalf("decisions status = %d", dResp.StatusCode)
	}
	var rec obs.RequestRecord
	if err := json.NewDecoder(dResp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != out.ReqID || len(rec.Decision) == 0 || rec.Status != "ok" {
		t.Fatalf("retained record wrong: %+v", rec)
	}
	// The list endpoint knows the id; an unknown id is a 404.
	lResp, err := http.Get(ts.URL + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer lResp.Body.Close()
	var list struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(lResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.IDs) != 1 || list.IDs[0] != out.ReqID {
		t.Fatalf("decision list = %v", list.IDs)
	}
	nResp, err := http.Get(ts.URL + "/debug/decisions/nope")
	if err != nil {
		t.Fatal(err)
	}
	nResp.Body.Close()
	if nResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", nResp.StatusCode)
	}
}

func TestCompileRejectsBadRequests(t *testing.T) {
	s, ts := testServer(t)
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	// Source that does not compile.
	resp2, _ := postCompile(t, ts, map[string]any{"source": "routine broken(", "procs": 4})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken source status = %d", resp2.StatusCode)
	}
	// Unknown strategy.
	resp3, _ := postCompile(t, ts, map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1},
		"procs": 4, "strategy": "fastest",
	})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy status = %d", resp3.StatusCode)
	}
	// Errors are counted and retained too.
	if got := s.reg.Counter("x"); got != 0 {
		t.Fatal("unexpected counter")
	}
	if s.reg.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", s.reg.Requests())
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	text, _ := io.ReadAll(mResp.Body)
	if !strings.Contains(string(text), `gcao_requests_total{status="error"} 3`) {
		t.Fatalf("error requests not exported (want 3):\n%s", text)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status   string  `json:"status"`
		Uptime   float64 `json:"uptime_seconds"`
		Requests int64   `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Uptime < 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestCompileTimeout pins the per-request bound: a request that cannot
// finish inside the budget gets a 503 from the timeout handler.
func TestCompileTimeout(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout: 1 * time.Nanosecond,
		ringSize:   8,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 64, "steps": 4}, "procs": 4,
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d, want 503", resp.StatusCode)
	}
}
