package main

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"gcao/internal/obs"
)

const stencilSrc = `
routine smooth(n, steps)
real a(0:n+1, 0:n+1), b(0:n+1, 0:n+1)
!hpf$ distribute (block, block) :: a, b
do i = 0, n + 1
do j = 0, n + 1
a(i, j) = 1.0 + i * 0.1 + j * 0.01
b(i, j) = 0.0
enddo
enddo
do it = 1, steps
do i = 1, n
do j = 1, n
b(i, j) = 0.25 * (a(i-1, j) + a(i+1, j) + a(i, j-1) + a(i, j+1))
enddo
enddo
do i = 1, n
do j = 1, n
a(i, j) = b(i, j)
enddo
enddo
enddo
end
`

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	s := newServer(serverConfig{
		reqTimeout: 30 * time.Second,
		ringSize:   8,
		logW:       io.Discard,
		logLevel:   obs.LevelDebug,
	})
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func postCompile(t *testing.T, ts *httptest.Server, body map[string]any) (*http.Response, compileResponse) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out compileResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding compile response: %v", err)
		}
	}
	return resp, out
}

func TestCompileEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 12, "steps": 2},
		"procs":    4,
		"strategy": "comb",
		"estimate": true,
		"simulate": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	if out.ReqID == "" || out.Strategy != "comb" || out.Machine != "SP2" {
		t.Fatalf("response header wrong: %+v", out)
	}
	if out.Messages <= 0 || out.Counts["NNC"] <= 0 {
		t.Fatalf("no placed messages reported: %+v", out)
	}
	if out.Estimate == nil || out.Estimate.NetSeconds <= 0 {
		t.Fatalf("estimate missing: %+v", out.Estimate)
	}
	if out.Simulate == nil || out.Simulate.DynMessages <= 0 || out.Simulate.BytesMoved <= 0 {
		t.Fatalf("simulation missing: %+v", out.Simulate)
	}
	if len(out.Metrics.Decisions) == 0 || out.Metrics.Counters["place.comb.groups"] <= 0 {
		t.Fatalf("metrics doc incomplete: %d decisions, counters %v",
			len(out.Metrics.Decisions), out.Metrics.Counters)
	}
	if out.Metrics.Profile == nil {
		t.Fatal("simulated request lost its communication profile")
	}
}

// TestCompileNativeBackend drives the native goroutine backend through
// the HTTP surface: backend:"native" adds the measured execution doc,
// the native.exec phase span, and the gcao_native_* metric families.
func TestCompileNativeBackend(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 12, "steps": 2},
		"procs":    4,
		"strategy": "comb",
		"simulate": true,
		"backend":  "native",
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	if out.Native == nil || out.Native.Procs != 4 || out.Native.Messages <= 0 || out.Native.Seconds <= 0 {
		t.Fatalf("native doc missing or implausible: %+v", out.Native)
	}
	if out.Native.Ops["exchange"] <= 0 {
		t.Fatalf("native ops not counted under the listing vocabulary: %v", out.Native.Ops)
	}
	found := false
	for _, sp := range out.Metrics.Spans {
		if sp.Name == "native:comb" {
			found = true
		}
	}
	if !found {
		t.Fatalf("no native:comb execution span in %+v", out.Metrics.Spans)
	}
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	if !strings.Contains(string(text), `gcao_native_exec_seconds_count{version="comb"} 1`) {
		t.Fatalf("native exec histogram missing from /metrics")
	}
	if !strings.Contains(string(text), `gcao_native_messages_total{version="comb"}`) {
		t.Fatalf("native message counter missing from /metrics")
	}

	// An unknown backend is a client error, not a server one.
	bad, _ := postCompile(t, ts, map[string]any{
		"source":  stencilSrc,
		"params":  map[string]int{"n": 12, "steps": 2},
		"procs":   4,
		"backend": "mpi",
	})
	if bad.StatusCode != http.StatusBadRequest {
		t.Fatalf("unknown backend status = %d, want 400", bad.StatusCode)
	}
}

// TestMetricsAfterCompile is the acceptance check: after one /compile,
// GET /metrics returns parseable Prometheus text exposition containing
// phase-latency histogram samples and placement counters.
func TestMetricsAfterCompile(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := postCompile(t, ts, map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 12, "steps": 2},
		"procs":  4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	if mResp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status = %d", mResp.StatusCode)
	}
	if ct := mResp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("metrics content type = %q", ct)
	}
	text, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPromText(text); err != nil {
		t.Fatalf("/metrics is not valid exposition format: %v\n%s", err, text)
	}
	for _, want := range []string{
		`gcao_requests_total{status="ok"} 1`,
		`gcao_phase_seconds_bucket{phase="parse",le="+Inf"} 1`,
		`gcao_phase_seconds_bucket{phase="place:comb"`,
		`gcao_pipeline_counter_total{name="place.comb.groups"}`,
		`gcao_pipeline_counter_total{name="analysis.comm_entries"}`,
		`gcao_placed_messages_count{version="comb"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestDecisionDebugEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postCompile(t, ts, map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 12, "steps": 2},
		"procs":  4,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	dResp, err := http.Get(ts.URL + "/debug/decisions/" + out.ReqID)
	if err != nil {
		t.Fatal(err)
	}
	defer dResp.Body.Close()
	if dResp.StatusCode != http.StatusOK {
		t.Fatalf("decisions status = %d", dResp.StatusCode)
	}
	var rec obs.RequestRecord
	if err := json.NewDecoder(dResp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	if rec.ID != out.ReqID || len(rec.Decision) == 0 || rec.Status != "ok" {
		t.Fatalf("retained record wrong: %+v", rec)
	}
	// The list endpoint knows the id; an unknown id is a 404.
	lResp, err := http.Get(ts.URL + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer lResp.Body.Close()
	var list struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(lResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.IDs) != 1 || list.IDs[0] != out.ReqID {
		t.Fatalf("decision list = %v", list.IDs)
	}
	nResp, err := http.Get(ts.URL + "/debug/decisions/nope")
	if err != nil {
		t.Fatal(err)
	}
	nResp.Body.Close()
	if nResp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", nResp.StatusCode)
	}
}

func TestCompileRejectsBadRequests(t *testing.T) {
	s, ts := testServer(t)
	// Malformed JSON.
	resp, err := http.Post(ts.URL+"/compile", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("malformed body status = %d", resp.StatusCode)
	}
	// Source that does not compile.
	resp2, _ := postCompile(t, ts, map[string]any{"source": "routine broken(", "procs": 4})
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("broken source status = %d", resp2.StatusCode)
	}
	// Unknown strategy.
	resp3, _ := postCompile(t, ts, map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1},
		"procs": 4, "strategy": "fastest",
	})
	if resp3.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad strategy status = %d", resp3.StatusCode)
	}
	// Errors are counted and retained too.
	if got := s.reg.Counter("x"); got != 0 {
		t.Fatal("unexpected counter")
	}
	if s.reg.Requests() != 3 {
		t.Fatalf("requests = %d, want 3", s.reg.Requests())
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	text, _ := io.ReadAll(mResp.Body)
	if !strings.Contains(string(text), `gcao_requests_total{status="error"} 3`) {
		t.Fatalf("error requests not exported (want 3):\n%s", text)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var h struct {
		Status   string  `json:"status"`
		Uptime   float64 `json:"uptime_seconds"`
		Requests int64   `json:"requests"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Uptime < 0 {
		t.Fatalf("healthz = %+v", h)
	}
}

// TestCompileCacheHit pins the tentpole behavior end to end: a
// repeated identical request is served from the compilation cache, the
// response says so, and the gcao_cache_* families report it.
func TestCompileCacheHit(t *testing.T) {
	_, ts := testServer(t)
	body := map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 12, "steps": 2},
		"procs":  4,
	}
	resp1, out1 := postCompile(t, ts, body)
	if resp1.StatusCode != http.StatusOK {
		t.Fatalf("first compile status = %d", resp1.StatusCode)
	}
	if out1.Cache == nil || out1.Cache.Compile != "miss" || out1.Cache.Place != "miss" {
		t.Fatalf("first request cache doc = %+v, want miss/miss", out1.Cache)
	}
	resp2, out2 := postCompile(t, ts, body)
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("second compile status = %d", resp2.StatusCode)
	}
	if out2.Cache == nil || out2.Cache.Compile != "hit" || out2.Cache.Place != "hit" {
		t.Fatalf("second request cache doc = %+v, want hit/hit", out2.Cache)
	}
	if out1.Messages != out2.Messages {
		t.Fatalf("cached placement diverged: %d vs %d messages", out1.Messages, out2.Messages)
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	text, _ := io.ReadAll(mResp.Body)
	if err := obs.CheckPromText(text); err != nil {
		t.Fatalf("/metrics invalid with cache families: %v", err)
	}
	for _, want := range []string{
		`gcao_cache_hits_total{tier="compile"} 1`,
		`gcao_cache_hits_total{tier="place"} 1`,
		`gcao_cache_misses_total{tier="compile"} 1`,
		`gcao_cache_entries{tier="compile"} 1`,
		`gcao_pipeline_counter_total{name="cache.compile.hit"} 1`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// The operator view agrees.
	cResp, err := http.Get(ts.URL + "/debug/cache")
	if err != nil {
		t.Fatal(err)
	}
	defer cResp.Body.Close()
	var dbg struct {
		Cache struct {
			Compile struct {
				Hits   int64 `json:"hits"`
				Misses int64 `json:"misses"`
			} `json:"compile"`
		} `json:"cache"`
		Scheduler struct {
			Submitted int64 `json:"submitted"`
		} `json:"scheduler"`
	}
	if err := json.NewDecoder(cResp.Body).Decode(&dbg); err != nil {
		t.Fatal(err)
	}
	if dbg.Cache.Compile.Hits != 1 || dbg.Cache.Compile.Misses != 1 {
		t.Fatalf("/debug/cache compile tier = %+v", dbg.Cache.Compile)
	}
	if dbg.Scheduler.Submitted != 2 {
		t.Fatalf("/debug/cache scheduler submitted = %d, want 2", dbg.Scheduler.Submitted)
	}
}

// TestPayloadTooLarge413 pins the oversized-body contract: a request
// beyond -max-body is a 413, not a generic 400 or 500.
func TestPayloadTooLarge413(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout: 30 * time.Second,
		ringSize:   8,
		maxBody:    512,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc + strings.Repeat("\n! padding", 200),
		"procs":  4,
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body status = %d, want 413", resp.StatusCode)
	}
	// A body inside the bound still compiles.
	small, _ := json.Marshal(map[string]any{
		"source": "routine tiny(n)\nreal a(n)\n!hpf$ distribute (block) :: a\ndo i = 1, n\na(i) = 1.0\nenddo\nend",
		"params": map[string]int{"n": 8}, "procs": 2,
	})
	resp2, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(small))
	if err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusOK {
		t.Fatalf("in-bound body status = %d, want 200", resp2.StatusCode)
	}
}

// blockingServer builds a server whose compile jobs block until the
// returned release function is called, with a single worker and a
// single queue slot — the deterministic saturation fixture.
func blockingServer(t *testing.T) (*server, *httptest.Server, func()) {
	t.Helper()
	s := newServer(serverConfig{
		reqTimeout: 30 * time.Second,
		ringSize:   8,
		workers:    1,
		queueDepth: 1,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	release := make(chan struct{})
	s.testHook = func() { <-release }
	ts := httptest.NewServer(s.handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.close)
	var once sync.Once
	return s, ts, func() { once.Do(func() { close(release) }) }
}

// saturate fills the blocking server: one request active on the only
// worker, one sitting in the only queue slot.
func saturate(t *testing.T, s *server, ts *httptest.Server, done chan<- int) {
	t.Helper()
	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4,
	})
	for i := 0; i < 2; i++ {
		go func() {
			resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
			if err != nil {
				done <- -1
				return
			}
			resp.Body.Close()
			done <- resp.StatusCode
		}()
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.pool.Stats()
		if st.Active == 1 && st.Queued == 1 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never saturated: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestQueueOverflow429 pins load shedding: with the worker busy and
// the queue full, the next request is rejected with 429 + Retry-After
// instead of queueing unboundedly.
func TestQueueOverflow429(t *testing.T) {
	s, ts, release := blockingServer(t)
	done := make(chan int, 2)
	saturate(t, s, ts, done)

	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4,
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 missing Retry-After header")
	}

	release()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("blocked request %d finished with %d, want 200", i, code)
		}
	}
	if got := s.pool.Stats().Rejected; got != 1 {
		t.Fatalf("pool rejected = %d, want 1", got)
	}
}

func postBatch(t *testing.T, ts *httptest.Server, items []map[string]any) (*http.Response, batchResponse) {
	t.Helper()
	raw, err := json.Marshal(map[string]any{"items": items})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/compile/batch", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { resp.Body.Close() })
	var out batchResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("decoding batch response: %v", err)
		}
	}
	return resp, out
}

// TestCompileBatch is the acceptance scenario: a batch of 8 programs
// completes through a pool of 2 workers, every item reporting its own
// id, status and cache outcome.
func TestCompileBatch(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout: 30 * time.Second,
		ringSize:   32,
		workers:    2,
		queueDepth: 8,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()

	items := make([]map[string]any, 8)
	for i := range items {
		items[i] = map[string]any{
			"source":   stencilSrc,
			"params":   map[string]int{"n": 8 + i, "steps": 1},
			"procs":    4,
			"strategy": "comb",
		}
	}
	// Two of the eight repeat an earlier parameter binding, so the
	// batch itself exercises the cache.
	items[6]["params"] = map[string]int{"n": 8, "steps": 1}
	items[7]["params"] = map[string]int{"n": 9, "steps": 1}

	resp, out := postBatch(t, ts, items)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status = %d", resp.StatusCode)
	}
	if out.Succeeded != 8 || out.Failed != 0 || len(out.Items) != 8 {
		t.Fatalf("batch outcome = %d ok / %d failed / %d items", out.Succeeded, out.Failed, len(out.Items))
	}
	ids := map[string]bool{}
	for _, item := range out.Items {
		if item.Status != http.StatusOK || item.Response == nil || item.Error != "" {
			t.Fatalf("item %d = %+v", item.Index, item)
		}
		if item.Response.Cache == nil {
			t.Fatalf("item %d missing cache doc", item.Index)
		}
		if ids[item.ReqID] {
			t.Fatalf("duplicate req id %s", item.ReqID)
		}
		ids[item.ReqID] = true
	}
	// The repeated bindings were served by the cache, not recompiled:
	// 6 distinct configurations, 8 lookups.
	st := s.cache.Stats()
	if st.Compile.Misses != 6 {
		t.Fatalf("compile misses = %d, want 6", st.Compile.Misses)
	}
	if st.Compile.Hits+st.Compile.InflightWaits != 2 {
		t.Fatalf("compile hits+dedups = %d, want 2", st.Compile.Hits+st.Compile.InflightWaits)
	}
	if got := s.pool.Stats().Completed; got != 8 {
		t.Fatalf("pool completed = %d, want 8", got)
	}
	// Every item's decision log is retained individually.
	lResp, err := http.Get(ts.URL + "/debug/decisions")
	if err != nil {
		t.Fatal(err)
	}
	defer lResp.Body.Close()
	var list struct {
		IDs []string `json:"ids"`
	}
	if err := json.NewDecoder(lResp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.IDs) != 8 {
		t.Fatalf("retained %d decision logs, want 8", len(list.IDs))
	}
}

// TestBatchQueueOverflow pins whole-batch shedding: when the pool is
// saturated and no item can be admitted, the batch is a single 429.
func TestBatchQueueOverflow(t *testing.T) {
	s, ts, release := blockingServer(t)
	done := make(chan int, 2)
	saturate(t, s, ts, done)

	items := []map[string]any{
		{"source": stencilSrc, "params": map[string]int{"n": 8, "steps": 1}, "procs": 4},
		{"source": stencilSrc, "params": map[string]int{"n": 9, "steps": 1}, "procs": 4},
	}
	resp, _ := postBatch(t, ts, items)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("saturated batch status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("batch 429 missing Retry-After header")
	}
	release()
	for i := 0; i < 2; i++ {
		if code := <-done; code != http.StatusOK {
			t.Fatalf("blocked request %d finished with %d, want 200", i, code)
		}
	}
}

// TestBatchRejectsBadRequests pins the batch endpoint's input checks.
func TestBatchRejectsBadRequests(t *testing.T) {
	_, ts := testServer(t)
	resp, _ := postBatch(t, ts, nil)
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("empty batch status = %d, want 400", resp.StatusCode)
	}
	big := make([]map[string]any, maxBatchItems+1)
	for i := range big {
		big[i] = map[string]any{"source": "x", "procs": 2}
	}
	resp2, _ := postBatch(t, ts, big)
	if resp2.StatusCode != http.StatusBadRequest {
		t.Fatalf("oversized batch status = %d, want 400", resp2.StatusCode)
	}
}

// TestHealthzVersion pins the build-identity surface.
func TestHealthzVersion(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout: time.Second,
		ringSize:   8,
		version:    "abc123def456",
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	defer s.close()
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h struct {
		Status  string `json:"status"`
		Version string `json:"version"`
		Go      string `json:"go"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Version != "abc123def456" {
		t.Fatalf("healthz version = %q", h.Version)
	}
	if !strings.HasPrefix(h.Go, "go") {
		t.Fatalf("healthz go = %q", h.Go)
	}
}

// TestCompileTimeout pins the per-request bound: a request that cannot
// finish inside the budget gets a 503 from the timeout handler.
func TestCompileTimeout(t *testing.T) {
	s := newServer(serverConfig{
		reqTimeout: 1 * time.Nanosecond,
		ringSize:   8,
		logW:       io.Discard,
		logLevel:   obs.LevelError,
	})
	ts := httptest.NewServer(s.handler())
	defer ts.Close()
	raw, _ := json.Marshal(map[string]any{
		"source": stencilSrc, "params": map[string]int{"n": 64, "steps": 4}, "procs": 4,
	})
	resp, err := http.Post(ts.URL+"/compile", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("timeout status = %d, want 503", resp.StatusCode)
	}
}

// TestCompileAllStrategies: strategy "all" places the three versions
// of one cached compilation concurrently and reports them side by
// side; the per-version results must match three individual requests.
func TestCompileAllStrategies(t *testing.T) {
	_, ts := testServer(t)
	resp, out := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 12, "steps": 2},
		"procs":    4,
		"strategy": "all",
		"estimate": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	if out.Strategy != "all" || len(out.Versions) != 3 {
		t.Fatalf("want 3 versions, got %+v", out)
	}
	wantOrder := []string{"orig", "nored", "comb"}
	for i, v := range out.Versions {
		if v.Strategy != wantOrder[i] {
			t.Fatalf("version %d = %s, want %s", i, v.Strategy, wantOrder[i])
		}
		if v.Messages <= 0 || v.Estimate == nil || v.Estimate.NetSeconds <= 0 {
			t.Fatalf("version %s incomplete: %+v", v.Strategy, v)
		}
	}
	if out.Versions[2].Messages > out.Versions[0].Messages {
		t.Errorf("comb placed %d messages, orig %d — combining must not add messages",
			out.Versions[2].Messages, out.Versions[0].Messages)
	}
	if out.Messages != out.Versions[2].Messages {
		t.Errorf("scalar fields should mirror comb: %d vs %d", out.Messages, out.Versions[2].Messages)
	}
	// Each version must agree with a dedicated single-strategy request.
	for _, strat := range wantOrder {
		_, single := postCompile(t, ts, map[string]any{
			"source":   stencilSrc,
			"params":   map[string]int{"n": 12, "steps": 2},
			"procs":    4,
			"strategy": strat,
		})
		var got versionDoc
		for _, v := range out.Versions {
			if v.Strategy == strat {
				got = v
			}
		}
		if single.Messages != got.Messages {
			t.Errorf("%s: all-mode %d messages, single-mode %d", strat, got.Messages, single.Messages)
		}
	}
}

// TestOptimalityGapMetrics: an estimating compile publishes the
// communication lower bound and per-version gap gauges on /metrics,
// and the live document reports the aggregate.
func TestOptimalityGapMetrics(t *testing.T) {
	s, ts := testServer(t)
	resp, _ := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 12, "steps": 2},
		"procs":    4,
		"strategy": "all",
		"estimate": true,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("compile status = %d", resp.StatusCode)
	}
	mResp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mResp.Body.Close()
	text, err := io.ReadAll(mResp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.CheckPromText(text); err != nil {
		t.Fatalf("/metrics invalid with gap families: %v", err)
	}
	for _, want := range []string{
		`gcao_comm_lower_bound_bytes{benchmark="smooth"}`,
		`gcao_optimality_gap_ratio{benchmark="smooth",version="orig"}`,
		`gcao_optimality_gap_ratio{benchmark="smooth",version="nored"}`,
		`gcao_optimality_gap_ratio{benchmark="smooth",version="comb"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	doc, _ := s.liveSnapshot(-1, 0)
	if doc.GapPoints != 3 {
		t.Fatalf("live gap points = %d, want 3 (one per version)", doc.GapPoints)
	}
	if doc.GapRatio < 1 {
		t.Errorf("aggregate gap = %v, want >= 1 (actual traffic at or above the bound)", doc.GapRatio)
	}
}
