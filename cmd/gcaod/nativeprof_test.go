package main

import (
	"io"
	"net/http"
	"strings"
	"testing"

	"gcao/internal/native/prof"
)

// TestNativeProfEndpoint: a backend:"native" compile is profiled end
// to end — the response carries the skew/blocked/calibration headline,
// /debug/nativeprof lists the request, /debug/nativeprof/{id} serves
// the retained profile, and the profiler metric families reach
// /metrics. A plain request has no profile and 404s.
func TestNativeProfEndpoint(t *testing.T) {
	_, ts := testServer(t)
	respPlain, outPlain := postCompile(t, ts, map[string]any{
		"source": stencilSrc,
		"params": map[string]int{"n": 12, "steps": 2},
		"procs":  4,
	})
	if respPlain.StatusCode != http.StatusOK {
		t.Fatalf("plain compile status = %d", respPlain.StatusCode)
	}
	respNat, outNat := postCompile(t, ts, map[string]any{
		"source":   stencilSrc,
		"params":   map[string]int{"n": 12, "steps": 3},
		"procs":    4,
		"strategy": "comb",
		"simulate": true,
		"backend":  "native",
	})
	if respNat.StatusCode != http.StatusOK {
		t.Fatalf("native compile status = %d", respNat.StatusCode)
	}
	if outNat.Native == nil {
		t.Fatal("native doc missing")
	}
	if outNat.Native.SkewRatio < 1 {
		t.Fatalf("skew ratio = %g, want >= 1 on a profiled run", outNat.Native.SkewRatio)
	}
	if outNat.Native.BlockedSeconds <= 0 {
		t.Fatalf("blocked seconds = %g, want > 0 on a communicating run", outNat.Native.BlockedSeconds)
	}
	if outNat.Metrics.NativeProf == nil {
		t.Fatal("metrics doc lost the native profile")
	}

	// The list endpoint names only the profiled request.
	var list struct {
		IDs      []string `json:"ids"`
		Retained int      `json:"retained"`
	}
	if code := getJSON(t, ts.URL+"/debug/nativeprof", &list); code != http.StatusOK {
		t.Fatalf("nativeprof list status = %d", code)
	}
	if len(list.IDs) != 1 || list.IDs[0] != outNat.ReqID || list.Retained != 2 {
		t.Fatalf("nativeprof list = %+v (native req %s)", list, outNat.ReqID)
	}

	var detail struct {
		ReqID   string              `json:"req_id"`
		Profile *prof.NativeProfile `json:"profile"`
	}
	if code := getJSON(t, ts.URL+"/debug/nativeprof/"+outNat.ReqID, &detail); code != http.StatusOK {
		t.Fatalf("nativeprof detail status = %d", code)
	}
	np := detail.Profile
	if detail.ReqID != outNat.ReqID || np == nil {
		t.Fatalf("nativeprof detail = %+v", detail)
	}
	if np.Procs != 4 || len(np.Steps) == 0 || len(np.ProcTotals) != 4 {
		t.Fatalf("profile shape: procs %d, %d steps, %d proc totals",
			np.Procs, len(np.Steps), len(np.ProcTotals))
	}
	if np.SkewRatio != outNat.Native.SkewRatio {
		t.Fatalf("retained skew %g != response skew %g", np.SkewRatio, outNat.Native.SkewRatio)
	}

	// The profiler families reach the scrape.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	text, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		`gcao_native_skew_ratio{version="comb"}`,
		`gcao_native_blocked_seconds_total{version="comb"}`,
	} {
		if !strings.Contains(string(text), want) {
			t.Fatalf("%s missing from /metrics", want)
		}
	}

	// Error paths: unprofiled request, unknown id, bad limit.
	if code := getJSON(t, ts.URL+"/debug/nativeprof/"+outPlain.ReqID, nil); code != http.StatusNotFound {
		t.Fatalf("unprofiled request status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/nativeprof/nope", nil); code != http.StatusNotFound {
		t.Fatalf("unknown id status = %d", code)
	}
	if code := getJSON(t, ts.URL+"/debug/nativeprof?limit=frog", nil); code != http.StatusBadRequest {
		t.Fatalf("bad limit status = %d", code)
	}
}
