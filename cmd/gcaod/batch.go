package main

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"time"

	"gcao/internal/obs"
	"gcao/internal/obs/reqtrace"
	"gcao/internal/sched"
)

// maxBatchItems bounds one /compile/batch request; a larger batch is
// rejected outright rather than partially admitted.
const maxBatchItems = 64

// batchRequest is the POST /compile/batch body: a list of independent
// compile requests scheduled together through the bounded worker pool.
type batchRequest struct {
	Items []compileRequest `json:"items"`
}

// batchItemResult is one item's outcome. Exactly one of Response and
// Error is set; Status is the item's HTTP-equivalent status code.
type batchItemResult struct {
	Index    int              `json:"index"`
	ReqID    string           `json:"req_id"`
	Status   int              `json:"status"`
	Response *compileResponse `json:"response,omitempty"`
	Error    string           `json:"error,omitempty"`
}

// batchResponse is the POST /compile/batch result.
type batchResponse struct {
	Items     []batchItemResult `json:"items"`
	Succeeded int               `json:"succeeded"`
	Failed    int               `json:"failed"`
}

// handleCompileBatch schedules every item of the batch onto the worker
// pool and reports per-item status. Items run with at most -workers
// concurrency; items that do not fit in the admission queue fail with
// 429 individually. If every item was rejected for queue overflow the
// whole batch is a 429 (with Retry-After), so a saturated daemon looks
// the same to batch and single-shot clients.
func (s *server) handleCompileBatch(w http.ResponseWriter, r *http.Request) {
	// The middleware's request id doubles as the batch id; items mint
	// their own ids below so every compilation remains individually
	// addressable in the decision ring and flight recorder.
	batchID := reqID(r)
	t0 := time.Now()
	req, err := decodeJSONBody[batchRequest](r, s.cfg.maxBody)
	if err != nil {
		s.reg.Absorb(nil, "error")
		s.writeError(w, batchID, err)
		return
	}
	if len(req.Items) == 0 {
		s.reg.Absorb(nil, "error")
		s.writeError(w, batchID, badRequestError{errors.New("batch has no items")})
		return
	}
	if len(req.Items) > maxBatchItems {
		s.reg.Absorb(nil, "error")
		s.writeError(w, batchID, badRequestError{
			fmt.Errorf("batch has %d items, limit is %d", len(req.Items), maxBatchItems)})
		return
	}

	type itemState struct {
		id     string
		rec    *obs.Recorder
		tr     *reqtrace.Trace
		cancel context.CancelFunc
	}
	states := make([]itemState, len(req.Items))
	tasks := make([]sched.BatchTask, len(req.Items))
	for i, item := range req.Items {
		id := fmt.Sprintf("r%06d", s.seq.Add(1))
		rec := obs.New()
		// Each item carries its own span tree under the batch's trace
		// id, so a slow item resolves at /debug/flightrecorder/{id}
		// like a single-shot request would.
		tr, _ := reqtrace.FromTraceparent("batch.item", reqtrace.FromContext(r.Context()).Traceparent())
		tr.SetReqID(id)
		root := tr.Root()
		root.SetAttr("batch", batchID)
		root.Phase("queue.wait")
		// Each item gets the same per-request deadline a single-shot
		// /compile gets; the batch ctx cancels them all if the client
		// goes away.
		ctx, cancel := context.WithTimeout(r.Context(), s.cfg.reqTimeout)
		states[i] = itemState{id: id, rec: rec, tr: tr, cancel: cancel}
		item := item
		tasks[i] = sched.BatchTask{
			Ctx: ctx,
			Run: func(context.Context) (any, error) {
				return s.compile(id, rec, item, root)
			},
		}
	}
	results := s.pool.Batch(r.Context(), tasks)
	for i := range states {
		states[i].cancel()
	}

	resp := batchResponse{Items: make([]batchItemResult, len(results))}
	allQueueFull := true
	for _, res := range results {
		st := states[res.Index]
		item := batchItemResult{Index: res.Index, ReqID: st.id, Status: http.StatusOK}
		var cresp *compileResponse
		if c, ok := res.Value.(*compileResponse); ok {
			cresp = c
			item.Response = c
		}
		if res.Err != nil {
			item.Status = httpStatus(res.Err)
			item.Error = res.Err.Error()
			resp.Failed++
		} else {
			resp.Succeeded++
		}
		if !errors.Is(res.Err, sched.ErrQueueFull) {
			allQueueFull = false
		}
		resp.Items[res.Index] = item
		s.record(st.id, t0, st.rec, cresp, res.Err)
		s.flightRecord(st.tr, "/compile/batch", item.Status, res.Err, cresp, t0)
	}
	s.log.Info("http.batch",
		obs.F("req", batchID), obs.F("items", len(results)),
		obs.F("ok", resp.Succeeded), obs.F("failed", resp.Failed),
		obs.F("dur_us", time.Since(t0).Microseconds()))
	if allQueueFull {
		s.writeError(w, batchID, sched.ErrQueueFull)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
