package main

import (
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"gcao/internal/obs"
	"gcao/internal/obs/reqtrace"
)

// routeLabel maps a request path onto the daemon's bounded route
// vocabulary, so per-route metric labels cannot explode with client
// garbage: known routes map to themselves, parameterized routes
// collapse their id segment, everything else is "other".
func routeLabel(path string) string {
	switch path {
	case "/compile", "/compile/batch", "/metrics", "/healthz",
		"/debug/cache", "/debug/decisions", "/debug/critpath",
		"/debug/nativeprof", "/debug/flightrecorder", "/debug/live":
		return path
	}
	switch {
	case strings.HasPrefix(path, "/debug/decisions/"):
		return "/debug/decisions/{id}"
	case strings.HasPrefix(path, "/debug/critpath/"):
		return "/debug/critpath/{id}"
	case strings.HasPrefix(path, "/debug/nativeprof/"):
		return "/debug/nativeprof/{id}"
	case strings.HasPrefix(path, "/debug/flightrecorder/"):
		return "/debug/flightrecorder/{id}"
	case strings.HasPrefix(path, "/debug/pprof"):
		return "/debug/pprof"
	}
	return "other"
}

// statusWriter captures the response status for the RED ledger. It
// forwards Flush so streaming handlers (/debug/live) work through the
// wrapper.
type statusWriter struct {
	http.ResponseWriter
	code int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

func (w *statusWriter) status() int {
	if w.code == 0 {
		return http.StatusOK
	}
	return w.code
}

// withObs is the ingress middleware every route runs under: it mints
// the request id, ingests (or mints) the W3C trace context and opens
// the request's span tree, answers with X-Request-Id and traceparent
// headers before the handler runs — so even sheds and timeouts carry
// them — and feeds the RED families and the in-flight gauge.
func (s *server) withObs(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		route := routeLabel(r.URL.Path)
		id := fmt.Sprintf("r%06d", s.seq.Add(1))
		tr, _ := reqtrace.FromTraceparent("http "+route, r.Header.Get("traceparent"))
		tr.SetReqID(id)
		// Open the first phase immediately so the tiling covers the
		// whole request: middleware and handler overhead land in
		// "ingress", not in an unaccounted gap.
		tr.Root().Phase("ingress")
		w.Header().Set("X-Request-Id", id)
		w.Header().Set("Traceparent", tr.Traceparent())
		sw := &statusWriter{ResponseWriter: w}
		s.inflight.Add(1)
		next.ServeHTTP(sw, r.WithContext(reqtrace.NewContext(r.Context(), tr)))
		s.inflight.Add(-1)
		s.reg.ObserveHTTP(route, sw.status(), time.Since(t0).Seconds())
	})
}

// reqID returns the middleware-minted id of the request being served.
func reqID(r *http.Request) string {
	return reqtrace.FromContext(r.Context()).ReqID()
}

// flightRecord closes the request's span tree and retains it in the
// flight recorder, keyed by the id the response's X-Request-Id header
// carried.
func (s *server) flightRecord(tr *reqtrace.Trace, route string, status int, err error, resp *compileResponse, t0 time.Time) {
	tr.Root().End()
	doc := tr.Doc()
	rec := reqtrace.Record{
		ID:      tr.ReqID(),
		TraceID: doc.TraceID,
		Route:   route,
		Status:  status,
		UnixNS:  t0.UnixNano(),
		WallUS:  doc.Root.DurUS,
		Phases:  reqtrace.PhaseTotals(doc.Root),
		Trace:   &doc,
	}
	if err != nil {
		rec.Error = err.Error()
	}
	if resp != nil {
		rec.Strategy = resp.Strategy
		if resp.Cache != nil {
			rec.Cache = resp.Cache.Compile
		}
		if resp.Native != nil {
			rec.NativeSkew = resp.Native.SkewRatio
			rec.NativeBlockedSec = resp.Native.BlockedSeconds
		}
	}
	s.flight.Add(rec)
}

// retryAfter derives the 429 backoff hint from the scheduler's own
// drain estimate (backlog × observed service time over the workers)
// instead of a constant, clamped to [1,30] seconds: an idle or barely
// loaded daemon invites an immediate retry, a deeply backed-up one
// pushes clients out to its real recovery horizon.
func (s *server) retryAfter() int {
	secs := int(math.Ceil(s.pool.EstimateDrain().Seconds()))
	if secs < 1 {
		secs = 1
	}
	if secs > 30 {
		secs = 30
	}
	return secs
}

// handleFlightList serves the flight recorder's ring and slow-store
// summaries (no span trees; fetch /debug/flightrecorder/{id} for one).
func (s *server) handleFlightList(w http.ResponseWriter, r *http.Request) {
	limit, err := listLimit(r)
	if err != nil {
		s.writeErrMsg(w, r, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"recent": s.flight.Recent(limit),
		"slow":   s.flight.Slow(limit),
		"stats":  s.flight.Stats(),
	})
}

// handleFlight serves one retained request's full record — phase
// summary plus span tree — looked up by the X-Request-Id the original
// response carried.
func (s *server) handleFlight(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.flight.Get(id)
	if !ok {
		s.writeErrMsg(w, r, http.StatusNotFound, "no retained flight record "+id)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

// serverStats adapts the live serving-layer occupancy for the
// registry's scrape-time gauges.
func (s *server) serverStats() obs.ServerStats {
	st := s.pool.Stats()
	return obs.ServerStats{
		HTTPInflight:      s.inflight.Load(),
		QueueDepth:        st.Queued,
		QueueCapacity:     int64(st.QueueDepth),
		ActiveJobs:        st.Active,
		Workers:           int64(st.Workers),
		AvgServiceSeconds: float64(st.AvgServiceUS) / 1e6,
		JobOutcomes: map[string]int64{
			"completed": st.Completed,
			"failed":    st.Failed,
			"expired":   st.Expired,
			"rejected":  st.Rejected,
		},
	}
}
