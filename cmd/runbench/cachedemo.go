package main

import (
	"fmt"
	"os"
	"text/tabwriter"
	"time"

	"gcao"
	"gcao/internal/bench"
)

// cacheDemo demonstrates the content-addressed compilation cache on
// the Fig. 10 benchmark suite: each program is compiled and placed
// cold (empty cache) and then warm (repeated identical request), and
// the speedup is reported. Timings are best-of-N so scheduler noise
// does not hide the effect.
func cacheDemo() {
	const rounds = 5
	cache := gcao.NewCache(gcao.CacheOptions{})
	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "benchmark/routine\tn\tprocs\tcold\twarm\tspeedup")
	for _, pr := range bench.Programs() {
		procs := pr.Procs["SP2"]
		if procs == 0 {
			procs = 4
		}
		cfg := gcao.Config{Params: pr.Params(pr.DefaultN), Procs: procs}

		// Cold: fingerprint and compile+place once through the cache
		// (the first round populates it; later rounds measure the
		// uncached pipeline directly for a fair floor).
		cold := time.Duration(1<<62 - 1)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			c, err := gcao.Compile(pr.Source, cfg)
			if err != nil {
				fatal(err)
			}
			if _, err := c.Place(gcao.Combine); err != nil {
				fatal(err)
			}
			if d := time.Since(t0); d < cold {
				cold = d
			}
		}

		// Prime the cache once, then measure repeated identical
		// requests.
		if _, _, err := cachedCompilePlace(cache, pr.Source, cfg); err != nil {
			fatal(err)
		}
		warm := time.Duration(1<<62 - 1)
		for i := 0; i < rounds; i++ {
			t0 := time.Now()
			compOut, placeOut, err := cachedCompilePlace(cache, pr.Source, cfg)
			if err != nil {
				fatal(err)
			}
			if compOut != gcao.CacheHit || placeOut != gcao.CacheHit {
				fatal(fmt.Errorf("%s/%s: warm round %d was %s/%s, want hit/hit",
					pr.Bench, pr.Routine, i, compOut, placeOut))
			}
			if d := time.Since(t0); d < warm {
				warm = d
			}
		}
		fmt.Fprintf(w, "%s/%s\t%d\t%d\t%v\t%v\t%.0fx\n",
			pr.Bench, pr.Routine, pr.DefaultN, procs, cold, warm,
			float64(cold)/float64(warm))
	}
	w.Flush()
	st := cache.Stats()
	fmt.Printf("\ncache: compile tier %d entries (%d hits, %d misses), place tier %d entries (%d hits, %d misses)\n",
		st.Compile.Entries, st.Compile.Hits, st.Compile.Misses,
		st.Place.Entries, st.Place.Hits, st.Place.Misses)
}

func cachedCompilePlace(cache *gcao.Cache, source string, cfg gcao.Config) (gcao.CacheOutcome, gcao.CacheOutcome, error) {
	c, compOut, err := cache.Compile(source, cfg)
	if err != nil {
		return compOut, gcao.CacheMiss, err
	}
	_, placeOut, err := cache.Place(c, gcao.Combine, gcao.PlacementOptions{}, nil)
	return compOut, placeOut, err
}
