// runbench regenerates the normalized running-time charts of
// Fig. 10(b)–(f): for each chart's problem-size sweep it compiles the
// benchmark, places communication under the three compiler versions,
// and prints the estimated normalized CPU/network bars on the chart's
// machine model. With -functional it additionally executes a small
// instance on the functional simulator and verifies numerical
// equivalence against a sequential run.
//
// -trace-out / -metrics-out export the observability data of the run
// (per-chart phase spans; for -functional also the placement decision
// logs and the simulator communication profile); -explain prints the
// functional placements' decision logs; -blame k prints each
// functional instance's top-k communication blame table (placement
// sites ranked by their critical-path cost under the machine's BSP
// model).
//
// Regression gating: -out BENCH_<rev>.json writes a machine-readable
// result (per-benchmark, per-compiler-version normalized times and
// message/byte counts); -compare <baseline.json> re-runs the sweep and
// exits nonzero if any metric regressed past -tolerance. `make
// benchgate` wires the two together. -history <file> additionally
// appends the sweep to an append-only JSONL store that `gcaoreport`
// renders as the optimality-gap dashboard.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"gcao/internal/bench"
	"gcao/internal/bench/history"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/native"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
	"gcao/internal/spmd"
)

func main() {
	fig := flag.String("fig", "all", "chart to run: b, c, d, e, f, or all")
	functional := flag.Bool("functional", false, "also run a small functional simulation with verification")
	traceOut := flag.String("trace-out", "", "write phase spans as a Chrome trace_event JSON file")
	metricsOut := flag.String("metrics-out", "", "write counters, decision logs and the simulator profile as JSON")
	explain := flag.Bool("explain", false, "print the functional placements' decision logs")
	blame := flag.Int("blame", 0, "with -functional: print each instance's top-k communication blame table (0: off)")
	out := flag.String("out", "", "write the benchmark sweep as machine-readable JSON and exit")
	compare := flag.String("compare", "", "re-run the sweep and compare against a baseline JSON; exit 1 on regression")
	tolerance := flag.Float64("tolerance", 0.05, "relative slack for -compare (0.05 = 5% worse allowed)")
	rev := flag.String("rev", "", "revision label for -out/-history (default: git rev-parse --short HEAD, else VCS revision from build info, else \"dev\")")
	historyOut := flag.String("history", "", "append the sweep to this JSONL bench-history store (see cmd/gcaoreport)")
	cacheDemoFlag := flag.Bool("cache-demo", false, "measure cold vs warm compile+place latency through the compilation cache and exit")
	jobs := flag.Int("j", runtime.GOMAXPROCS(0), "worker pool width for the sweep; 1 forces the sequential path (output is identical either way)")
	backend := flag.String("backend", "sim", "execution backend for -functional and gate-mode measurement: sim or native")
	flag.Parse()

	if *backend != "sim" && *backend != "native" {
		fatal(fmt.Errorf("unknown -backend %q (want sim or native)", *backend))
	}

	if *cacheDemoFlag {
		cacheDemo()
		return
	}
	if *out != "" || *compare != "" || *historyOut != "" {
		gate(*out, *compare, *historyOut, *tolerance, *rev, *jobs, *backend == "native")
		return
	}

	var rec *obs.Recorder
	if *traceOut != "" || *metricsOut != "" || *explain || *blame > 0 {
		rec = obs.New()
	}

	var specs []bench.Chart
	for _, spec := range bench.ChartSpecs() {
		if *fig != "all" && !strings.EqualFold(*fig, spec.ID) {
			continue
		}
		specs = append(specs, spec)
	}
	end := rec.Start("charts")
	charts, err := bench.RunCharts(specs, *jobs)
	end()
	if err != nil {
		fatal(err)
	}
	for _, c := range charts {
		bench.WriteChart(os.Stdout, c)
		for i, n := range c.Sizes {
			fmt.Printf("  n=%-5d network-cost ratio comb/orig = %.2f (paper reports ~1/2 to 1/3)\n", n, c.CommRatio[i])
		}
		fmt.Println()
	}

	if *functional {
		fmt.Println("functional verification (small instances, P=4):")
		m := machine.SP2()
		for _, pr := range bench.Programs() {
			n := 6
			if pr.Bench == "shallow" || pr.Bench == "trimesh" {
				n = 8
			}
			a, err := pr.Compile(n, 4)
			if err != nil {
				fatal(err)
			}
			a.Obs = rec
			res, err := a.Place(core.Options{Version: core.VersionCombine})
			if err != nil {
				fatal(err)
			}
			run, err := spmd.Run(res, m, 4)
			if err != nil {
				fatal(fmt.Errorf("%s/%s: %w", pr.Bench, pr.Routine, err))
			}
			seqA, err := pr.Compile(n, 1)
			if err != nil {
				fatal(err)
			}
			seqRes, err := seqA.Place(core.Options{Version: core.VersionCombine})
			if err != nil {
				fatal(err)
			}
			seq, err := spmd.Run(seqRes, m, 1)
			if err != nil {
				fatal(err)
			}
			if err := spmd.VerifyAgainstSequential(run, seq); err != nil {
				fatal(fmt.Errorf("%s/%s: %w", pr.Bench, pr.Routine, err))
			}
			fmt.Printf("  %-18s ok (%d dynamic messages, %d barriers)\n",
				pr.Bench+"/"+pr.Routine, run.Ledger.DynMessages, run.Ledger.Barriers)
			if *backend == "native" {
				if err := native.VerifyAgainstSimulator(res, m, 4); err != nil {
					fatal(fmt.Errorf("%s/%s: %w", pr.Bench, pr.Routine, err))
				}
				nat, err := native.Run(res, 4)
				if err != nil {
					fatal(fmt.Errorf("%s/%s: %w", pr.Bench, pr.Routine, err))
				}
				fmt.Printf("  %-18s native ok, bit-identical to simulator (%d messages, %d barriers, %d wire bytes, %d hops)\n",
					pr.Bench+"/"+pr.Routine, nat.Stats.Messages, nat.Stats.Barriers, nat.Stats.WireBytes, nat.Stats.Hops)
			}
			if *blame > 0 {
				// The recorder keeps only the latest run's attribution,
				// so the blame table prints per instance, right after
				// its parallel simulation.
				attrRun := rec.Attribution()
				if attrRun == nil {
					fatal(fmt.Errorf("%s/%s: no attribution record", pr.Bench, pr.Routine))
				}
				model := attr.CostModel{GSecPerByte: m.PerByte, LSec: m.SendOverhead + m.RecvOverhead + m.Latency}
				fmt.Print(attr.Analyze(attrRun, model).FormatBlame(*blame))
			}
		}
		if *explain {
			fmt.Println("\n== placement decisions (functional instances) ==")
			for _, d := range rec.Decisions() {
				fmt.Println(d.Format())
			}
		}
	}
	writeObs(rec, *traceOut, *metricsOut)
}

// gate is the regression-gate mode: collect the deterministic analytic
// sweep, optionally write it, optionally compare it against a
// baseline, optionally append it to a JSONL history store.
func gate(out, compare, historyOut string, tolerance float64, rev string, jobs int, nativeBackend bool) {
	if rev == "" {
		rev = detectRevision()
	}
	res, err := bench.CollectBenchResultParallel(rev, runtime.Version(), jobs)
	if err != nil {
		fatal(err)
	}
	if nativeBackend {
		res.Native, err = bench.CollectNativeResult()
		if err != nil {
			fatal(err)
		}
		for _, e := range res.Native {
			fmt.Printf("runbench: native %-22s %.4fs (%.2fx vs orig, %d messages, %d wire bytes, %d allocs)\n",
				e.Key(), e.NativeSeconds, e.SpeedupVsOrig, e.Messages, e.WireBytes, e.Allocs)
		}
		// Measured vs modeled: one line per calibrated entry comparing
		// the run's fitted BSP constants to the SP2 model it was checked
		// against — the Fig. 5 replay sanity check. A site straying past
		// 2x its modeled cost earns a warning: the paper's constants do
		// not describe this host.
		m := machine.SP2()
		modelL := m.SendOverhead + m.RecvOverhead + m.Latency
		for _, e := range res.Native {
			if e.FittedG == 0 && e.FittedL == 0 {
				continue
			}
			fmt.Printf("runbench: calib  %-22s fitted L=%.3gs g=%.3gs/B (model %s: L=%.3gs g=%.3gs/B)  skew %.2fx  blocked %.0f%%\n",
				e.Key(), e.FittedL, e.FittedG, m.Name, modelL, m.PerByte, e.SkewRatio, e.BlockedFrac*100)
			if e.WorstResidualRatio > 2 || (e.WorstResidualRatio > 0 && e.WorstResidualRatio < 0.5) {
				fmt.Printf("runbench: warning: %s site %s measured %.2fx its modeled cost\n",
					e.Key(), e.WorstResidualSite, e.WorstResidualRatio)
			}
		}
	}
	if out != "" {
		f, err := os.Create(out)
		if err != nil {
			fatal(err)
		}
		if err := bench.WriteBenchResult(f, res); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("runbench: wrote %d entries (rev %s) to %s\n", len(res.Entries), res.Rev, out)
	}
	if historyOut != "" {
		recTime := time.Now().UnixNano()
		record, err := history.Append(historyOut, res.Rev, recTime, res)
		if err != nil {
			fatal(fmt.Errorf("appending history: %w", err))
		}
		fmt.Printf("runbench: appended seq %d (rev %s) to %s\n", record.Seq, record.Rev, historyOut)
	}
	if compare != "" {
		f, err := os.Open(compare)
		if err != nil {
			fatal(err)
		}
		baseline, err := bench.ReadBenchResult(f)
		f.Close()
		if err != nil {
			fatal(err)
		}
		regs := bench.CompareBenchResults(baseline, res, tolerance)
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "runbench: %d regression(s) vs %s (rev %s, tolerance %.0f%%):\n",
				len(regs), compare, baseline.Rev, tolerance*100)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  "+r.String())
			}
			os.Exit(1)
		}
		fmt.Printf("runbench: %d entries within %.0f%% of %s (rev %s)\n",
			len(res.Entries), tolerance*100, compare, baseline.Rev)
	}
}

// detectRevision labels the sweep with the working tree's revision:
// `git rev-parse --short HEAD` when run inside a checkout (the usual
// case — `go run` binaries carry no VCS stamp), else the revision
// stamped into the binary.
func detectRevision() string {
	cmd := exec.Command("git", "rev-parse", "--short", "HEAD")
	cmd.Stderr = nil
	if out, err := cmd.Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return buildRevision()
}

// buildRevision pulls the VCS revision stamped into the binary, if any.
func buildRevision() string {
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && len(s.Value) >= 12 {
				return s.Value[:12]
			}
		}
	}
	return "dev"
}

func writeObs(rec *obs.Recorder, traceOut, metricsOut string) {
	if rec == nil {
		return
	}
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteMetrics(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "runbench:", err)
	os.Exit(1)
}
