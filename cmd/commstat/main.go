// commstat regenerates the compile-time static message-count table of
// Fig. 10(a): for every benchmark routine, the number of communication
// call sites under the three compiler versions (orig / nored / comb),
// side by side with the numbers published in the paper.
//
// With -json the table is emitted as a machine-readable document
// (rows plus the observability counters of every placement, in the
// obs metrics encoding) so benchmark trajectories can be diffed
// across changes. -trace-out / -metrics-out export the pipeline
// observability data; -explain prints every placement decision.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/obs"
	"gcao/internal/spmd"
)

// jsonRow is one Fig. 10(a) row in the -json document, with the
// paper's published numbers attached when available.
type jsonRow struct {
	Bench   string `json:"bench"`
	Routine string `json:"routine"`
	Comm    string `json:"comm"`
	Orig    int    `json:"orig"`
	NoRed   int    `json:"nored"`
	Comb    int    `json:"comb"`
	Paper   *struct {
		Orig  int `json:"orig"`
		NoRed int `json:"nored"`
		Comb  int `json:"comb"`
	} `json:"paper,omitempty"`
}

type jsonDoc struct {
	Procs int       `json:"procs"`
	Rows  []jsonRow `json:"rows"`
	// Counters is the obs metrics encoding of every placement's
	// elimination/combining counters (deterministic: no timings).
	Counters map[string]int64 `json:"counters"`
	// Profiles carries each benchmark's simulated comm-profile totals
	// (small functional instances under comb), so scripts get traffic
	// volume alongside the static placement counts in one invocation.
	Profiles []jsonProfile `json:"profiles,omitempty"`
}

// jsonProfile is one benchmark's simulated communication totals.
type jsonProfile struct {
	Bench   string `json:"bench"`
	Routine string `json:"routine"`
	N       int    `json:"n"`
	Procs   int    `json:"procs"`
	// Messages/Bytes total the run's dynamic traffic; MaxPairBytes is
	// the heaviest sender→receiver pair.
	Messages     int   `json:"messages"`
	Bytes        int64 `json:"bytes"`
	MaxPairBytes int64 `json:"max_pair_bytes"`
}

// simProfiles runs each benchmark's small functional instance (the
// commprof defaults: n=6 or 8, P=4, comb on the SP2 model) and
// collects the comm-profile totals.
func simProfiles() ([]jsonProfile, error) {
	m := machine.SP2()
	var out []jsonProfile
	for _, pr := range bench.Programs() {
		n := 6
		if pr.Bench == "shallow" || pr.Bench == "trimesh" {
			n = 8
		}
		const simProcs = 4
		rec := obs.New()
		a, err := pr.Compile(n, simProcs)
		if err != nil {
			return nil, err
		}
		a.Obs = rec
		res, err := a.Place(core.Options{Version: core.VersionCombine})
		if err != nil {
			return nil, err
		}
		if _, err := spmd.Run(res, m, simProcs); err != nil {
			return nil, fmt.Errorf("%s/%s: %w", pr.Bench, pr.Routine, err)
		}
		prof := rec.CommProfile()
		if prof == nil {
			return nil, fmt.Errorf("%s/%s: simulator produced no profile", pr.Bench, pr.Routine)
		}
		out = append(out, jsonProfile{
			Bench: pr.Bench, Routine: pr.Routine, N: n, Procs: simProcs,
			Messages:     prof.TotalMessages(),
			Bytes:        prof.TotalBytes(),
			MaxPairBytes: prof.MaxPairBytes(),
		})
	}
	return out, nil
}

func main() {
	procs := flag.Int("procs", 25, "processor count (the paper used P=25 on the SP2)")
	n := flag.Int("n", 0, "problem size override (0: per-benchmark default)")
	jsonOut := flag.Bool("json", false, "emit the table as machine-readable JSON")
	traceOut := flag.String("trace-out", "", "write pipeline phase spans as a Chrome trace_event JSON file")
	metricsOut := flag.String("metrics-out", "", "write counters and decision logs as JSON")
	explain := flag.Bool("explain", false, "print every placement decision")
	flag.Parse()

	rec := obs.New()

	var doc jsonDoc
	doc.Procs = *procs
	if !*jsonOut {
		fmt.Printf("Fig. 10(a): static communication call sites per routine (P=%d)\n\n", *procs)
		fmt.Printf("%-9s %-9s %-5s | %6s %6s %6s | %6s %6s %6s\n",
			"Benchmark", "Routine", "Comm", "orig", "nored", "comb", "paper", "paper", "paper")
	}
	for _, pr := range bench.Programs() {
		size := pr.DefaultN
		if *n > 0 {
			size = *n
		}
		rows, err := bench.StaticCountsObs(pr, size, *procs, rec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commstat:", err)
			os.Exit(1)
		}
		for _, r := range rows {
			jr := jsonRow{Bench: r.Bench, Routine: r.Routine, Comm: r.CommType,
				Orig: r.Orig, NoRed: r.NoRed, Comb: r.Comb}
			po, pn, pc := "-", "-", "-"
			for _, p := range bench.PaperCounts {
				if p.Bench == r.Bench && p.Routine == r.Routine && p.CommType == r.CommType {
					po, pn, pc = fmt.Sprint(p.Orig), fmt.Sprint(p.NoRed), fmt.Sprint(p.Comb)
					jr.Paper = &struct {
						Orig  int `json:"orig"`
						NoRed int `json:"nored"`
						Comb  int `json:"comb"`
					}{p.Orig, p.NoRed, p.Comb}
				}
			}
			if *jsonOut {
				doc.Rows = append(doc.Rows, jr)
			} else {
				fmt.Printf("%-9s %-9s %-5s | %6d %6d %6d | %6s %6s %6s\n",
					r.Bench, r.Routine, r.CommType, r.Orig, r.NoRed, r.Comb, po, pn, pc)
			}
		}
	}
	if *jsonOut {
		doc.Counters = rec.Counters()
		profiles, err := simProfiles()
		if err != nil {
			fatal(err)
		}
		doc.Profiles = profiles
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(doc); err != nil {
			fatal(err)
		}
	}
	if *explain {
		fmt.Println("\n== placement decisions ==")
		for _, d := range rec.Decisions() {
			fmt.Printf("%-6s %s\n", d.Version, d.Format())
		}
	}
	writeObs(rec, *traceOut, *metricsOut)
}

func writeObs(rec *obs.Recorder, traceOut, metricsOut string) {
	if traceOut != "" {
		f, err := os.Create(traceOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteTrace(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if metricsOut != "" {
		f, err := os.Create(metricsOut)
		if err != nil {
			fatal(err)
		}
		if err := rec.WriteMetrics(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "commstat:", err)
	os.Exit(1)
}
