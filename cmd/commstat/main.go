// commstat regenerates the compile-time static message-count table of
// Fig. 10(a): for every benchmark routine, the number of communication
// call sites under the three compiler versions (orig / nored / comb),
// side by side with the numbers published in the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"gcao/internal/bench"
)

func main() {
	procs := flag.Int("procs", 25, "processor count (the paper used P=25 on the SP2)")
	n := flag.Int("n", 0, "problem size override (0: per-benchmark default)")
	flag.Parse()

	fmt.Printf("Fig. 10(a): static communication call sites per routine (P=%d)\n\n", *procs)
	fmt.Printf("%-9s %-9s %-5s | %6s %6s %6s | %6s %6s %6s\n",
		"Benchmark", "Routine", "Comm", "orig", "nored", "comb", "paper", "paper", "paper")
	for _, pr := range bench.Programs() {
		size := pr.DefaultN
		if *n > 0 {
			size = *n
		}
		rows, err := bench.StaticCounts(pr, size, *procs)
		if err != nil {
			fmt.Fprintln(os.Stderr, "commstat:", err)
			os.Exit(1)
		}
		for _, r := range rows {
			po, pn, pc := "-", "-", "-"
			for _, p := range bench.PaperCounts {
				if p.Bench == r.Bench && p.Routine == r.Routine && p.CommType == r.CommType {
					po, pn, pc = fmt.Sprint(p.Orig), fmt.Sprint(p.NoRed), fmt.Sprint(p.Comb)
				}
			}
			fmt.Printf("%-9s %-9s %-5s | %6d %6d %6d | %6s %6s %6s\n",
				r.Bench, r.Routine, r.CommType, r.Orig, r.NoRed, r.Comb, po, pn, pc)
		}
	}
}
