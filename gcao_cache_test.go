package gcao_test

import (
	"sync"
	"testing"
	"time"

	"gcao"
	"gcao/internal/bench"
)

// twoMainSrc is a program with two distinct entry routines sharing one
// helper: compiled from "iterate" the program is the §7 example (two
// call sites combined), from "once" a single sweep. Distinct `main`
// selections must never collide in the cache.
const twoMainSrc = `
routine iterate(n, steps)
real a(n, n), ra(n, n)
!hpf$ distribute (block, block) :: a, ra
do i = 1, n
do j = 1, n
a(i, j) = i + 2 * j
ra(i, j) = 0
enddo
enddo
do it = 1, steps
call relaxstep(a, ra, n)
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = a(i, j) + 0.1 * ra(i, j)
enddo
enddo
enddo
end

routine once(n)
real a(n, n), ra(n, n)
!hpf$ distribute (block, block) :: a, ra
do i = 1, n
do j = 1, n
a(i, j) = i - j
ra(i, j) = 0
enddo
enddo
call relaxstep(a, ra, n)
end

routine relaxstep(q, r, n)
real q(n, n), r(n, n)
do i = 2, n - 1
do j = 2, n - 1
r(i, j) = q(i - 1, j) + q(i + 1, j) + q(i, j - 1) + q(i, j + 1) - 4 * q(i, j)
enddo
enddo
end
`

func TestCacheCompileHitAndPlaceTiers(t *testing.T) {
	c := gcao.NewCache(gcao.CacheOptions{})
	cfg := gcao.Config{Params: map[string]int{"n": 12, "steps": 2}, Procs: 4}
	rec := gcao.NewRecorder()
	cfgObs := cfg
	cfgObs.Obs = rec

	comp1, out, err := c.Compile(benchSource(t), cfgObs)
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("first compile: outcome %v, err %v", out, err)
	}
	comp2, out, err := c.Compile(benchSource(t), cfg)
	if err != nil || out != gcao.CacheHit {
		t.Fatalf("second compile: outcome %v, err %v", out, err)
	}
	if comp1 != comp2 {
		t.Fatal("cache hit returned a different compilation")
	}
	// The outcome flows into the request recorder's counters.
	if rec.Counter("cache.compile.miss") != 1 {
		t.Fatalf("recorder counters = %v", rec.Counters())
	}

	p1, out, err := c.Place(comp1, gcao.Combine, gcao.PlacementOptions{}, nil)
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("first place: outcome %v, err %v", out, err)
	}
	p2, out, err := c.Place(comp2, gcao.Combine, gcao.PlacementOptions{}, nil)
	if err != nil || out != gcao.CacheHit {
		t.Fatalf("second place: outcome %v, err %v", out, err)
	}
	if p1 != p2 || p1.Messages() <= 0 {
		t.Fatalf("place hit wrong: %p vs %p, %d messages", p1, p2, p1.Messages())
	}
	// A different strategy or different options is a different key.
	_, out, err = c.Place(comp1, gcao.Vectorize, gcao.PlacementOptions{}, nil)
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("other strategy: outcome %v, err %v", out, err)
	}
	_, out, err = c.Place(comp1, gcao.Combine, gcao.PlacementOptions{DisableCombining: true}, nil)
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("other options: outcome %v, err %v", out, err)
	}
	st := c.Stats()
	if st.Compile.Misses != 1 || st.Compile.Hits != 1 {
		t.Fatalf("compile tier stats = %+v", st.Compile)
	}
	if st.Place.Misses != 3 || st.Place.Hits != 1 {
		t.Fatalf("place tier stats = %+v", st.Place)
	}
}

// TestCacheParamsCanonical: the same binding in any map order is one
// entry; a different binding or processor count is another.
func TestCacheParamsCanonical(t *testing.T) {
	c := gcao.NewCache(gcao.CacheOptions{})
	src := benchSource(t)
	_, out, err := c.Compile(src, gcao.Config{Params: map[string]int{"n": 12, "steps": 2}, Procs: 4})
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("first: %v, %v", out, err)
	}
	_, out, err = c.Compile(src, gcao.Config{Params: map[string]int{"steps": 2, "n": 12}, Procs: 4})
	if err != nil || out != gcao.CacheHit {
		t.Fatalf("reordered params: %v, %v", out, err)
	}
	_, out, err = c.Compile(src, gcao.Config{Params: map[string]int{"n": 16, "steps": 2}, Procs: 4})
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("different n: %v, %v", out, err)
	}
	_, out, err = c.Compile(src, gcao.Config{Params: map[string]int{"n": 12, "steps": 2}, Procs: 16})
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("different procs: %v, %v", out, err)
	}
}

// TestCacheCompileProgramDistinctMains: the multi-procedure path keys
// on the entry routine, so distinct mains of one program text never
// collide, while a repeat of the same main hits.
func TestCacheCompileProgramDistinctMains(t *testing.T) {
	c := gcao.NewCache(gcao.CacheOptions{})
	cfgIter := gcao.Config{Params: map[string]int{"n": 12, "steps": 2}, Procs: 4}
	cfgOnce := gcao.Config{Params: map[string]int{"n": 12}, Procs: 4}

	compIter, out, err := c.CompileProgram(twoMainSrc, "iterate", cfgIter)
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("iterate: outcome %v, err %v", out, err)
	}
	compOnce, out, err := c.CompileProgram(twoMainSrc, "once", cfgOnce)
	if err != nil || out != gcao.CacheMiss {
		t.Fatalf("once compiled as %v (fingerprint collision with iterate?), err %v", out, err)
	}
	if compIter == compOnce {
		t.Fatal("distinct mains returned the same compilation")
	}
	// iterate inlines relaxstep inside a timestep loop plus an update
	// sweep; once is a single inlined call — the flattened programs
	// must differ even though both reach the same helper.
	ni, no := len(compIter.Analysis.G.Stmts), len(compOnce.Analysis.G.Stmts)
	if ni <= no {
		t.Fatalf("flattened programs do not differ: iterate %d stmts, once %d", ni, no)
	}
	if _, out, _ = c.CompileProgram(twoMainSrc, "iterate", cfgIter); out != gcao.CacheHit {
		t.Fatalf("repeat iterate: outcome %v", out)
	}
	st := c.Stats()
	if st.Compile.Misses != 2 || st.Compile.Hits != 1 {
		t.Fatalf("compile tier stats = %+v", st.Compile)
	}
	// Both placements work on the shared analyses.
	for _, comp := range []*gcao.Compilation{compIter, compOnce} {
		p, _, err := c.Place(comp, gcao.Combine, gcao.PlacementOptions{}, nil)
		if err != nil || p.Messages() <= 0 {
			t.Fatalf("place: %v, %v", p, err)
		}
	}
}

// TestCacheConcurrentSingleflight hammers one cache with concurrent
// identical and distinct requests; run with -race. The singleflight
// counters prove each distinct request compiled exactly once.
func TestCacheConcurrentSingleflight(t *testing.T) {
	c := gcao.NewCache(gcao.CacheOptions{})
	const (
		goroutines = 12
		iters      = 6
	)
	// Three distinct requests: two problem sizes and a distinct procs.
	cfgs := []gcao.Config{
		{Params: map[string]int{"n": 10, "steps": 1}, Procs: 4},
		{Params: map[string]int{"n": 12, "steps": 1}, Procs: 4},
		{Params: map[string]int{"n": 10, "steps": 1}, Procs: 16},
	}
	src := benchSource(t)
	gate := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-gate
			for i := 0; i < iters; i++ {
				cfg := cfgs[(g+i)%len(cfgs)]
				comp, _, err := c.Compile(src, cfg)
				if err != nil {
					t.Errorf("compile: %v", err)
					return
				}
				p, _, err := c.Place(comp, gcao.Combine, gcao.PlacementOptions{}, nil)
				if err != nil || p.Messages() <= 0 {
					t.Errorf("place: %v, %v", p, err)
					return
				}
				if _, err := p.Estimate(gcao.SP2()); err != nil {
					t.Errorf("estimate: %v", err)
					return
				}
			}
		}(g)
	}
	close(gate)
	wg.Wait()
	st := c.Stats()
	if st.Compile.Misses != int64(len(cfgs)) {
		t.Fatalf("compile misses = %d, want exactly %d (one per distinct request)",
			st.Compile.Misses, len(cfgs))
	}
	if st.Place.Misses != int64(len(cfgs)) {
		t.Fatalf("place misses = %d, want exactly %d", st.Place.Misses, len(cfgs))
	}
	total := st.Compile.Hits + st.Compile.Misses + st.Compile.InflightWaits
	if total != goroutines*iters {
		t.Fatalf("compile lookups = %d, want %d", total, goroutines*iters)
	}
}

// benchSource returns the shallow-water Fig. 10 program, the paper
// benchmark the warm-vs-cold measurements repeat.
func benchSource(t testing.TB) string {
	t.Helper()
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	return pr.Source
}

// TestWarmCacheSpeedup is the acceptance measurement: a warm-cache
// compile+place of a repeated Fig. 10 program must be at least 5x
// faster than the cold path. The margin in practice is orders of
// magnitude (a full pipeline run vs one sharded map lookup), so 5x
// with the best-of-N discipline is robust to scheduler noise.
func TestWarmCacheSpeedup(t *testing.T) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		t.Fatal(err)
	}
	cfg := gcao.Config{Params: pr.Params(64), Procs: 4}

	cold := func() time.Duration {
		t0 := time.Now()
		comp, err := gcao.Compile(pr.Source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := comp.Place(gcao.Combine); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	c := gcao.NewCache(gcao.CacheOptions{})
	warm := func() time.Duration {
		t0 := time.Now()
		comp, out, err := c.Compile(pr.Source, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if out == gcao.CacheMiss {
			return -1 // priming run, not a warm measurement
		}
		if _, _, err := c.Place(comp, gcao.Combine, gcao.PlacementOptions{}, nil); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	warm() // prime both tiers

	const rounds = 5
	best := func(f func() time.Duration) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < rounds; i++ {
			if d := f(); d >= 0 && d < b {
				b = d
			}
		}
		return b
	}
	// Retry the whole measurement a few times before declaring failure,
	// so a single GC pause or noisy neighbor cannot flake the suite.
	var coldBest, warmBest time.Duration
	for attempt := 0; attempt < 3; attempt++ {
		coldBest, warmBest = best(cold), best(warm)
		if coldBest >= 5*warmBest {
			t.Logf("cold %v vs warm %v (%.0fx)", coldBest, warmBest,
				float64(coldBest)/float64(warmBest))
			return
		}
	}
	t.Fatalf("warm cache not >=5x faster: cold %v, warm %v (%.1fx)",
		coldBest, warmBest, float64(coldBest)/float64(warmBest))
}

// Benchmarks for the record: the cold pipeline vs the warm cache on
// the same Fig. 10 program.
func BenchmarkCompileShallowCold(b *testing.B) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		b.Fatal(err)
	}
	cfg := gcao.Config{Params: pr.Params(64), Procs: 4}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		comp, err := gcao.Compile(pr.Source, cfg)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := comp.Place(gcao.Combine); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompileShallowWarm(b *testing.B) {
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		b.Fatal(err)
	}
	cfg := gcao.Config{Params: pr.Params(64), Procs: 4}
	c := gcao.NewCache(gcao.CacheOptions{})
	if _, _, err := c.Compile(pr.Source, cfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		comp, out, err := c.Compile(pr.Source, cfg)
		if err != nil || out != gcao.CacheHit {
			b.Fatalf("outcome %v, err %v", out, err)
		}
		if _, _, err := c.Place(comp, gcao.Combine, gcao.PlacementOptions{}, nil); err != nil {
			b.Fatal(err)
		}
	}
}
