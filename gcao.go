// Package gcao is a from-scratch reproduction of "Global Communication
// Analysis and Optimization" (Chakrabarti, Gupta, Choi; PLDI 1996): an
// HPF-style compiler pass that chooses communication placements for
// all non-local array references of a procedure globally and
// interdependently, eliminating redundancy and combining messages in a
// unified framework, together with the substrates the paper's
// evaluation needs — a mini-HPF front end, array SSA and dependence
// analysis, Available Section Descriptors, and a simulated
// distributed-memory machine with IBM SP2 and Berkeley NOW cost
// models.
//
// The typical flow is:
//
//	c, err := gcao.Compile(source, gcao.Config{Params: map[string]int{"n": 256}, Procs: 16})
//	placed, err := c.Place(gcao.Combine)          // the paper's algorithm
//	baseline, err := c.Place(gcao.Vectorize)      // the "orig" baseline
//	run, err := placed.Simulate(gcao.SP2(), 16)   // functional simulation
//	cost, err := placed.Estimate(gcao.SP2())      // analytic cost model
//
// Compile parses and analyzes one routine; Place runs a placement
// strategy; Simulate executes the program elementwise on a
// bulk-synchronous simulator that verifies every remote access was
// actually communicated; Estimate computes per-processor CPU/network
// time without touching data, for paper-scale problem sizes.
package gcao

import (
	"fmt"
	"io"

	"gcao/internal/core"
	"gcao/internal/core/bound"
	"gcao/internal/inline"
	"gcao/internal/machine"
	"gcao/internal/native"
	"gcao/internal/obs"
	"gcao/internal/obs/attr"
	"gcao/internal/parser"
	"gcao/internal/sem"
	"gcao/internal/spmd"
)

// Recorder re-exports the observability recorder: attach one via
// Config.Obs to capture pipeline phase spans, placement metrics, the
// per-entry decision log, and simulator communication profiles. A nil
// recorder disables observability at zero cost.
type Recorder = obs.Recorder

// NewRecorder builds an empty observability recorder.
func NewRecorder() *Recorder { return obs.New() }

// Registry re-exports the process-global metrics registry: a server
// absorbs each request's Recorder into one Registry and serves the
// aggregate in Prometheus text exposition format (cmd/gcaod does
// exactly this).
type Registry = obs.Registry

// NewRegistry builds an empty metrics registry.
func NewRegistry() *Registry { return obs.NewRegistry() }

// AttrRun re-exports the simulator's cost-attribution record: one
// h-relation Step per superstep, each blaming its traffic to the
// placement site that scheduled it and the originating source
// statements. SimulateObs fills one on the request's Recorder
// (Recorder.Attribution returns it).
type AttrRun = attr.Run

// AttrCostModel re-exports the BSP cost model attribution reports are
// evaluated under: a superstep moving an h-relation of h bytes costs
// L + g·h seconds.
type AttrCostModel = attr.CostModel

// AttrReport re-exports the analyzed attribution report: per-site
// blame ranking and the communication critical path.
type AttrReport = attr.Report

// DefaultAttrCostModel returns SP2-flavoured cost model knobs.
func DefaultAttrCostModel() AttrCostModel { return attr.DefaultCostModel() }

// AttrCostModelFor derives attribution knobs from a machine model: g
// from its receive bandwidth, L from its per-message overheads plus
// wire latency.
func AttrCostModelFor(m Machine) AttrCostModel {
	return AttrCostModel{GSecPerByte: m.PerByte, LSec: m.SendOverhead + m.RecvOverhead + m.Latency}
}

// AnalyzeAttribution computes the per-site blame ranking and the
// communication critical path of a run under the given cost model.
func AnalyzeAttribution(run *AttrRun, model AttrCostModel) *AttrReport {
	return attr.Analyze(run, model)
}

// Logger re-exports the leveled structured JSON event logger; attach
// one via Config.Log to receive request-scoped pipeline events.
type Logger = obs.Logger

// LogLevel re-exports the logger severity scale.
type LogLevel = obs.Level

// NewLogger builds a logger writing JSON event lines at or above min
// to w.
func NewLogger(w io.Writer, min LogLevel) *Logger { return obs.NewLogger(w, min) }

// Strategy selects a communication placement strategy.
type Strategy int

const (
	// Vectorize is the baseline: message vectorization to the
	// outermost possible loop with per-statement coalescing, no
	// redundancy elimination, no combining ("orig" in the paper).
	Vectorize Strategy = iota
	// EarliestRedundancy adds redundancy elimination via earliest
	// placement, the prior state of the art ("nored").
	EarliestRedundancy
	// Combine is the paper's global algorithm ("comb").
	Combine
)

func (s Strategy) String() string { return s.version().String() }

// StrategyByName resolves a strategy from its Fig. 10 column name:
// "orig" (or "vectorize"), "nored" (or "redund"), "comb" (or
// "combine").
func StrategyByName(name string) (Strategy, error) {
	switch name {
	case "orig", "vectorize":
		return Vectorize, nil
	case "nored", "redund":
		return EarliestRedundancy, nil
	case "comb", "combine", "":
		return Combine, nil
	}
	return 0, fmt.Errorf("gcao: unknown strategy %q (want orig, nored or comb)", name)
}

func (s Strategy) version() core.Version {
	switch s {
	case Vectorize:
		return core.VersionOrig
	case EarliestRedundancy:
		return core.VersionRedund
	default:
		return core.VersionCombine
	}
}

// Machine re-exports the platform cost model.
type Machine = machine.Machine

// SP2 returns the IBM SP2 cost model (P=25 in the paper's runs).
func SP2() Machine { return machine.SP2() }

// NOW returns the Berkeley NOW cost model (P=8 in the paper's runs).
func NOW() Machine { return machine.NOW() }

// MachineByName resolves "SP2" or "NOW".
func MachineByName(name string) (Machine, error) { return machine.ByName(name) }

// Config configures compilation.
type Config struct {
	// Params binds the routine's integer parameters (problem sizes,
	// step counts). Every declared parameter must be bound.
	Params map[string]int
	// Procs is the processor count; a PROCESSORS directive in the
	// source takes precedence.
	Procs int
	// Obs, when non-nil, records pipeline phase spans, placement
	// metrics and decision logs, and simulator communication profiles
	// for every operation on the resulting compilation.
	Obs *Recorder
	// Log, when non-nil, receives leveled structured JSON events from
	// the pipeline (analysis/placement/simulation summaries at info,
	// per-phase timings at debug). Events flow through the Obs
	// recorder, so Log requires Obs to be set.
	Log *Logger
	// ReqID, when non-empty, tags every logged event of this
	// compilation with a request id — the serving-path correlation key.
	ReqID string
}

// Compilation is an analyzed routine ready for placement.
type Compilation struct {
	// Analysis exposes the full analysis pipeline for inspection:
	// scalarized body, CFG, dominators, SSA, and the communication
	// entries with their earliest/latest/candidate positions.
	Analysis *core.Analysis

	// fingerprint is the content address of the compile inputs, set
	// when the compilation was produced by a Cache; it keys the
	// placement tier so placements of cached analyses are themselves
	// cacheable.
	fingerprint string
}

// Compile parses, semantically analyzes, scalarizes and
// communication-analyzes a mini-HPF routine.
func Compile(source string, cfg Config) (*Compilation, error) {
	cfg.Obs.SetLog(cfg.Log, cfg.ReqID)
	end := cfg.Obs.Start("parse")
	r, err := parser.ParseRoutine(source)
	end()
	if err != nil {
		return nil, err
	}
	end = cfg.Obs.Start("sem")
	u, err := sem.Analyze(r, cfg.Params, sem.Options{Procs: cfg.Procs})
	end()
	if err != nil {
		return nil, err
	}
	a, err := core.NewAnalysisObs(u, cfg.Obs)
	if err != nil {
		return nil, err
	}
	return &Compilation{Analysis: a}, nil
}

// CompileProgram compiles a multi-routine program: every CALL
// reachable from the named main routine is inlined first (package
// inline), so the global communication analysis — and therefore
// redundancy elimination and message combining — works across
// procedure boundaries, the §7 interprocedural direction.
func CompileProgram(source, main string, cfg Config) (*Compilation, error) {
	cfg.Obs.SetLog(cfg.Log, cfg.ReqID)
	end := cfg.Obs.Start("parse")
	prog, err := parser.Parse(source)
	end()
	if err != nil {
		return nil, err
	}
	end = cfg.Obs.Start("inline")
	flat, err := inline.Flatten(prog, main)
	end()
	if err != nil {
		return nil, err
	}
	end = cfg.Obs.Start("sem")
	u, err := sem.Analyze(flat, cfg.Params, sem.Options{Procs: cfg.Procs})
	end()
	if err != nil {
		return nil, err
	}
	a, err := core.NewAnalysisObs(u, cfg.Obs)
	if err != nil {
		return nil, err
	}
	return &Compilation{Analysis: a}, nil
}

// Entries returns the communication requirements found in the routine
// (excluding diagonal NNC already coalesced into axis exchanges).
func (c *Compilation) Entries() []*core.Entry { return c.Analysis.CommEntries() }

// Place runs a placement strategy with default options.
func (c *Compilation) Place(s Strategy) (*Placed, error) {
	return c.PlaceOptions(s, PlacementOptions{})
}

// PlacementOptions exposes the paper's tunables for ablation studies.
type PlacementOptions struct {
	// CombineThresholdBytes bounds combined message size (default the
	// paper's 20 KB).
	CombineThresholdBytes int
	// MaxHullBlowup bounds single-descriptor union padding (default
	// 1.25).
	MaxHullBlowup float64
	// DisableSubsetElim turns off §4.5 subset elimination.
	DisableSubsetElim bool
	// NaiveGreedyOrder processes entries in program order instead of
	// most-constrained-first.
	NaiveGreedyOrder bool
	// DisableCombining keeps global placement but emits one message
	// per entry.
	DisableCombining bool
	// PartialRedundancy enables the paper's §7 future-work extension:
	// later messages are trimmed to the section an earlier exchange
	// does not already deliver.
	PartialRedundancy bool
}

// coreOptions lowers the public tunables to the core representation.
func (opt PlacementOptions) coreOptions(s Strategy) core.Options {
	return core.Options{
		Version:               s.version(),
		CombineThresholdBytes: opt.CombineThresholdBytes,
		MaxHullBlowup:         opt.MaxHullBlowup,
		DisableSubsetElim:     opt.DisableSubsetElim,
		NaiveGreedyOrder:      opt.NaiveGreedyOrder,
		DisableCombining:      opt.DisableCombining,
		PartialRedundancy:     opt.PartialRedundancy,
	}
}

// canon renders the options canonically for cache fingerprinting:
// every tunable that changes placement output is significant.
func (opt PlacementOptions) canon() string {
	return fmt.Sprintf("ct=%d hb=%g se=%t ng=%t dc=%t pr=%t",
		opt.CombineThresholdBytes, opt.MaxHullBlowup, opt.DisableSubsetElim,
		opt.NaiveGreedyOrder, opt.DisableCombining, opt.PartialRedundancy)
}

// PlaceOptions runs a placement strategy with explicit options.
func (c *Compilation) PlaceOptions(s Strategy, opt PlacementOptions) (*Placed, error) {
	res, err := c.Analysis.Place(opt.coreOptions(s))
	if err != nil {
		return nil, err
	}
	return &Placed{Compilation: c, Result: res}, nil
}

// placeObs is PlaceOptions with an explicit recorder, used when the
// compilation is cache-resident: its analysis-wide recorder is
// detached (it belonged to the request that built it), so each
// placement threads its own.
func (c *Compilation) placeObs(s Strategy, opt PlacementOptions, rec *Recorder) (*Placed, error) {
	copts := opt.coreOptions(s)
	copts.Obs = rec
	res, err := c.Analysis.Place(copts)
	if err != nil {
		return nil, err
	}
	return &Placed{Compilation: c, Result: res}, nil
}

// CommLowerBound re-exports the placement-independent communication
// lower bound: the bytes any placement of the compilation must move,
// derived from the analysis alone (package bound documents the
// derivation and its deliberate looseness).
type CommLowerBound = bound.Bound

// LowerBound computes the compilation's communication lower bound.
// The bound is placement-independent: it holds for every strategy,
// every option set, and the exhaustive optimal search alike, so
// actual-traffic/bound is a placement's optimality-gap ratio.
func (c *Compilation) LowerBound() CommLowerBound {
	return bound.Compute(c.Analysis)
}

// OptimalityGap relates a placement's traffic to the compilation's
// communication lower bound.
type OptimalityGap struct {
	// BoundBytes is the placement-independent floor; ActualBytes the
	// analytic estimate of this placement's traffic on the machine.
	BoundBytes  float64 `json:"bound_bytes"`
	ActualBytes float64 `json:"actual_bytes"`
	// Ratio is ActualBytes/BoundBytes (0 when the bound is zero);
	// PctOfOptimal is BoundBytes/ActualBytes as a percentage, 100
	// meaning provably optimal.
	Ratio        float64 `json:"ratio"`
	PctOfOptimal float64 `json:"pct_of_optimal"`
}

// OptimalityGap estimates the placement's traffic under the machine
// model and relates it to the communication lower bound.
func (p *Placed) OptimalityGap(m Machine) (OptimalityGap, error) {
	cost, err := p.Estimate(m)
	if err != nil {
		return OptimalityGap{}, err
	}
	b := bound.Compute(p.Compilation.Analysis)
	return OptimalityGap{
		BoundBytes:   b.TotalBytes,
		ActualBytes:  cost.Bytes,
		Ratio:        b.Gap(cost.Bytes),
		PctOfOptimal: b.PctOfOptimal(cost.Bytes),
	}, nil
}

// Placed is a routine with chosen communication placements.
type Placed struct {
	Compilation *Compilation
	Result      *core.Result
}

// Messages returns the number of placed communication operations —
// the static call-site count of Fig. 10(a).
func (p *Placed) Messages() int { return p.Result.TotalMessages() }

// MessageCounts returns placed operation counts by communication kind.
func (p *Placed) MessageCounts() map[core.CommKind]int { return p.Result.Counts() }

// Simulate executes the program on the functional bulk-synchronous
// simulator with the given machine model and processor count (which
// must match the compilation's grid). The run fails if any processor
// reads remote data the placement failed to deliver.
func (p *Placed) Simulate(m Machine, procs int) (*spmd.RunResult, error) {
	return spmd.Run(p.Result, m, procs)
}

// SimulateObs is Simulate with an explicit recorder for the run's
// profile and counters. Use it when the placement came out of a Cache:
// the cached analysis carries no recorder of its own, so Simulate
// would run unprofiled.
func (p *Placed) SimulateObs(m Machine, procs int, rec *Recorder) (*spmd.RunResult, error) {
	return spmd.RunObs(p.Result, m, procs, rec)
}

// Estimate computes the analytic per-processor cost under the machine
// model.
func (p *Placed) Estimate(m Machine) (spmd.Cost, error) {
	return spmd.Estimate(p.Result, m)
}

// RunNative executes the placed program for real: one goroutine per
// logical processor, each owning its block of every distributed array,
// with the placed communication groups realized as channel transfers.
// The processor count must match the compilation's grid. Results are
// bit-identical to Simulate by construction; VerifyNative enforces it.
func (p *Placed) RunNative(procs int) (*native.RunResult, error) {
	return native.Run(p.Result, procs)
}

// RunNativeObs is RunNative with an explicit recorder capturing the
// run's phase span and message counters.
func (p *Placed) RunNativeObs(procs int, rec *Recorder) (*native.RunResult, error) {
	return native.RunObs(p.Result, procs, rec)
}

// RunNativeProfiled is RunNativeObs with the runtime profiler armed:
// every processor records its communication events into a preallocated
// ring, and the result (and the recorder) carry the folded
// NativeProfile — per-superstep timelines, wait accounting, compute
// skew — ready for Calibrate against a simulator attribution record.
func (p *Placed) RunNativeProfiled(procs int, rec *Recorder) (*native.RunResult, error) {
	return native.RunProfiled(p.Result, procs, rec)
}

// VerifyNative runs the placement on both backends — the BSP simulator
// and the native goroutine engine — and compares final distributed
// memory and scalar state bit for bit.
func (p *Placed) VerifyNative(m Machine, procs int) error {
	return native.VerifyAgainstSimulator(p.Result, m, procs)
}

// CompareStrategies compiles nothing new: it places the routine under
// all three strategies and returns their normalized cost bars, the
// quantity plotted in Fig. 10(b)–(f).
func (c *Compilation) CompareStrategies(m Machine) ([]spmd.Bar, error) {
	return spmd.EstimateVersions(c.Analysis, m)
}

// Verify runs the placed program and an independent single-processor
// reference and compares all array contents elementwise.
func (p *Placed) Verify(source string, cfg Config, m Machine, procs int) error {
	run, err := p.Simulate(m, procs)
	if err != nil {
		return err
	}
	seqCfg := cfg
	seqCfg.Procs = 1
	seqC, err := Compile(source, seqCfg)
	if err != nil {
		return fmt.Errorf("gcao: sequential reference compile: %w", err)
	}
	seqP, err := seqC.Place(Combine)
	if err != nil {
		return err
	}
	seq, err := seqP.Simulate(m, 1)
	if err != nil {
		return err
	}
	return spmd.VerifyAgainstSequential(run, seq)
}
