// Benchmark harness: one benchmark per table and figure of the
// paper's evaluation (§3 Fig. 5, §5 Fig. 10a–f), plus ablations of the
// design choices DESIGN.md calls out. Run with:
//
//	go test -bench=. -benchmem
//
// Each Fig. 10 benchmark measures the full compile-and-place pipeline
// for the three compiler versions and reports the resulting message
// counts and estimated times as benchmark metrics, so `go test -bench`
// regenerates the paper's numbers alongside wall-clock compile cost.
package gcao_test

import (
	"fmt"
	goruntime "runtime"
	"testing"

	"gcao"
	"gcao/internal/bench"
	"gcao/internal/core"
	"gcao/internal/machine"
	"gcao/internal/native"
	"gcao/internal/spmd"
)

// BenchmarkFig5Curves evaluates the three §3 profiling curves across
// the log-spaced sizes of Fig. 5 on both machine models.
func BenchmarkFig5Curves(b *testing.B) {
	b.ReportAllocs()
	for _, m := range []machine.Machine{machine.SP2(), machine.NOW()} {
		b.Run(m.Name, func(b *testing.B) {
			b.ReportAllocs()
			sink := 0.0
			for i := 0; i < b.N; i++ {
				for bytes := 16; bytes <= 1<<20; bytes *= 2 {
					sink += m.BcopyBandwidth(bytes) + m.InjectBandwidth(bytes) + m.NetworkBandwidth(bytes)
				}
			}
			_ = sink
			b.ReportMetric(float64(m.HalfPowerPoint()), "halfpower-bytes")
		})
	}
}

// benchFig10a compiles and places one benchmark routine under all
// three versions, reporting the static message counts as metrics.
func benchFig10a(b *testing.B, benchName, routine string) {
	pr, err := bench.ByName(benchName, routine)
	if err != nil {
		b.Fatal(err)
	}
	var counts [3]int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a, err := pr.Compile(pr.DefaultN, 25)
		if err != nil {
			b.Fatal(err)
		}
		for vi, v := range []core.Version{core.VersionOrig, core.VersionRedund, core.VersionCombine} {
			res, err := a.Place(core.Options{Version: v})
			if err != nil {
				b.Fatal(err)
			}
			counts[vi] = res.TotalMessages()
		}
	}
	b.ReportMetric(float64(counts[0]), "orig-msgs")
	b.ReportMetric(float64(counts[1]), "nored-msgs")
	b.ReportMetric(float64(counts[2]), "comb-msgs")
}

func BenchmarkFig10aShallow(b *testing.B)        { benchFig10a(b, "shallow", "main") }
func BenchmarkFig10aGravity(b *testing.B)        { benchFig10a(b, "gravity", "main") }
func BenchmarkFig10aTrimeshNormdot(b *testing.B) { benchFig10a(b, "trimesh", "normdot") }
func BenchmarkFig10aTrimeshGauss(b *testing.B)   { benchFig10a(b, "trimesh", "gauss") }
func BenchmarkFig10aHydfloFlux(b *testing.B)     { benchFig10a(b, "hydflo", "flux") }
func BenchmarkFig10aHydfloHydro(b *testing.B)    { benchFig10a(b, "hydflo", "hydro") }

// benchChart regenerates one Fig. 10(b–f) chart per iteration and
// reports the mid-size normalized comb total and comb/orig network
// ratio.
func benchChart(b *testing.B, id string) {
	var spec bench.Chart
	found := false
	for _, s := range bench.ChartSpecs() {
		if s.ID == id {
			spec, found = s, true
		}
	}
	if !found {
		b.Fatalf("no chart %q", id)
	}
	var c bench.Chart
	var err error
	for i := 0; i < b.N; i++ {
		c, err = bench.RunChart(spec)
		if err != nil {
			b.Fatal(err)
		}
	}
	mid := len(c.Points) / 2
	combBar := c.Points[mid].Bars[2]
	b.ReportMetric(combBar.CPU+combBar.Net, "comb-norm-total")
	b.ReportMetric(c.CommRatio[mid], "comb/orig-net")
}

func BenchmarkFig10bSP2Shallow(b *testing.B) { benchChart(b, "b") }
func BenchmarkFig10cSP2Gravity(b *testing.B) { benchChart(b, "c") }
func BenchmarkFig10dNOWShallow(b *testing.B) { benchChart(b, "d") }
func BenchmarkFig10eNOWGravity(b *testing.B) { benchChart(b, "e") }
func BenchmarkFig10fNOWTrimesh(b *testing.B) { benchChart(b, "f") }

// BenchmarkFunctionalSimulation runs the verified functional simulator
// on the shallow benchmark — the end-to-end cost of executing a placed
// program with validity tracking.
func BenchmarkFunctionalSimulation(b *testing.B) {
	b.ReportAllocs()
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		b.Fatal(err)
	}
	a, err := pr.Compile(16, 4)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		b.Fatal(err)
	}
	m := machine.SP2()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := spmd.Run(res, m, 4); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------
// Ablations (DESIGN.md §5)

// BenchmarkThresholdAblation sweeps the combining threshold on the
// hydflo flux routine, whose large strips make the threshold bite: a
// tiny threshold forbids combining, the paper's 20 KB recovers it.
func BenchmarkThresholdAblation(b *testing.B) {
	b.ReportAllocs()
	pr, err := bench.ByName("hydflo", "flux")
	if err != nil {
		b.Fatal(err)
	}
	// n=44 puts the seven-array strips just past 20 KB combined, so the
	// paper's 20 KB threshold splits the direction groups while a
	// loose threshold recovers full combining.
	const n = 44
	for _, kb := range []int{1, 4, 20, 1024} {
		b.Run(fmt.Sprintf("%dKB", kb), func(b *testing.B) {
			b.ReportAllocs()
			var msgs int
			for i := 0; i < b.N; i++ {
				a, err := pr.Compile(n, 25)
				if err != nil {
					b.Fatal(err)
				}
				res, err := a.Place(core.Options{Version: core.VersionCombine, CombineThresholdBytes: kb << 10})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.TotalMessages()
			}
			b.ReportMetric(float64(msgs), "comb-msgs")
		})
	}
}

// BenchmarkGreedyOrderAblation compares the most-constrained-first
// greedy order of Fig. 9(g) against naive program order.
func BenchmarkGreedyOrderAblation(b *testing.B) {
	b.ReportAllocs()
	pr, err := bench.ByName("shallow", "main")
	if err != nil {
		b.Fatal(err)
	}
	for _, naive := range []bool{false, true} {
		name := "constrained-first"
		if naive {
			name = "program-order"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var msgs int
			for i := 0; i < b.N; i++ {
				a, err := pr.Compile(pr.DefaultN, 25)
				if err != nil {
					b.Fatal(err)
				}
				res, err := a.Place(core.Options{Version: core.VersionCombine, NaiveGreedyOrder: naive})
				if err != nil {
					b.Fatal(err)
				}
				msgs = res.TotalMessages()
			}
			b.ReportMetric(float64(msgs), "comb-msgs")
		})
	}
}

// BenchmarkSubsetElimAblation measures §4.5 on and off across the
// whole suite (message totals; §6 predicts dropping it can only hurt).
func BenchmarkSubsetElimAblation(b *testing.B) {
	b.ReportAllocs()
	for _, disable := range []bool{false, true} {
		name := "on"
		if disable {
			name = "off"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var total int
			for i := 0; i < b.N; i++ {
				total = 0
				for _, pr := range bench.Programs() {
					a, err := pr.Compile(pr.DefaultN, 25)
					if err != nil {
						b.Fatal(err)
					}
					res, err := a.Place(core.Options{Version: core.VersionCombine, DisableSubsetElim: disable})
					if err != nil {
						b.Fatal(err)
					}
					total += res.TotalMessages()
				}
			}
			b.ReportMetric(float64(total), "total-comb-msgs")
		})
	}
}

// optimalKernel is small enough for the exhaustive §6.1 search: two
// fields with two-direction stencils updated across a timestep loop.
const optimalKernel = `
routine opt(n, steps)
real a(n, n), b(n, n), ra(n, n), rb(n, n)
!hpf$ distribute (block, block) :: a, b, ra, rb
do i = 1, n
do j = 1, n
a(i, j) = i
b(i, j) = j
ra(i, j) = 0
rb(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
ra(i, j) = a(i - 1, j) + a(i + 1, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
rb(i, j) = b(i - 1, j) + b(i + 1, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = a(i, j) + 0.1 * ra(i, j)
b(i, j) = b(i, j) + 0.1 * rb(i, j)
enddo
enddo
enddo
end
`

// BenchmarkOptimalAblation runs the exhaustive optimal placement on a
// small kernel and reports greedy vs optimal dynamic message counts
// (Claim 6.1 motivates the heuristic; here it matches the optimum).
func BenchmarkOptimalAblation(b *testing.B) {
	b.ReportAllocs()
	c, err := gcao.Compile(optimalKernel, gcao.Config{Params: map[string]int{"n": 16, "steps": 4}, Procs: 4})
	if err != nil {
		b.Fatal(err)
	}
	a := c.Analysis
	var gd, od float64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		greedy, err := a.Place(core.Options{Version: core.VersionCombine})
		if err != nil {
			b.Fatal(err)
		}
		optimal, err := a.PlaceOptimal(core.Options{Version: core.VersionCombine}, 2_000_000)
		if err != nil {
			b.Fatal(err)
		}
		if gd, err = a.DynamicMessages(greedy); err != nil {
			b.Fatal(err)
		}
		if od, err = a.DynamicMessages(optimal); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(gd, "greedy-dyn-msgs")
	b.ReportMetric(od, "optimal-dyn-msgs")
}

// BenchmarkCompile measures the raw analysis pipeline cost on the
// largest benchmark source.
func BenchmarkCompile(b *testing.B) {
	b.ReportAllocs()
	pr, err := bench.ByName("hydflo", "flux")
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		if _, err := pr.Compile(64, 25); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartialRedundancyAblation measures the §7 extension on a
// kernel where combining is threshold-blocked, reporting the estimated
// bytes moved with and without section trimming.
func BenchmarkPartialRedundancyAblation(b *testing.B) {
	b.ReportAllocs()
	const src = `
routine pr(n, steps)
real a(0:n+1, 0:n+1), c(0:n+1, 0:n+1), d(0:n+1, 0:n+1)
!hpf$ distribute (block, block) :: a, c, d
do i = 0, n + 1
do j = 0, n + 1
a(i, j) = i + j
c(i, j) = 0
d(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 1, n
do j = 1, n
c(i, j) = a(i - 1, j)
enddo
enddo
do i = 2, n + 1
do j = 1, n
d(i, j) = a(i - 1, j)
enddo
enddo
do i = 1, n
do j = 1, n
a(i, j) = 0.5 * (c(i, j) + d(i, j))
enddo
enddo
enddo
end
`
	comp, err := gcao.Compile(src, gcao.Config{Params: map[string]int{"n": 64, "steps": 8}, Procs: 16})
	if err != nil {
		b.Fatal(err)
	}
	m := machine.SP2()
	for _, partial := range []bool{false, true} {
		name := "off"
		if partial {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			var bytes float64
			for i := 0; i < b.N; i++ {
				placed, err := comp.PlaceOptions(gcao.Combine, gcao.PlacementOptions{
					CombineThresholdBytes: 200,
					PartialRedundancy:     partial,
				})
				if err != nil {
					b.Fatal(err)
				}
				cost, err := placed.Estimate(m)
				if err != nil {
					b.Fatal(err)
				}
				bytes = cost.Bytes
			}
			b.ReportMetric(bytes, "est-bytes")
		})
	}
}

// BenchmarkParallelSimulation measures the sharded functional
// simulator against its own sequential path on the paper's hot point:
// gravity, procs=25, n=250 (Fig. 10(c)'s upper sizes). The sequential
// sub-benchmark is the baseline; the parallel one runs the same
// placement with one shard per available core. Results are
// bit-identical either way, so this measures pure wall-clock. Short
// mode shrinks the problem so CI stays fast.
func BenchmarkParallelSimulation(b *testing.B) {
	n := 250
	if testing.Short() {
		n = 48
	}
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		b.Fatal(err)
	}
	a, err := pr.Compile(n, 25)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		b.Fatal(err)
	}
	m := machine.SP2()
	b.Run("sequential", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spmd.RunParallel(res, m, 25, 1); err != nil {
				b.Fatal(err)
			}
		}
	})
	workers := goruntime.GOMAXPROCS(0)
	if workers > 25 {
		workers = 25
	}
	b.Run(fmt.Sprintf("parallel-j%d", workers), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := spmd.RunParallel(res, m, 25, workers); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNativeExecution measures the native goroutine backend on
// the same hot point BenchmarkParallelSimulation uses — gravity,
// procs=25, n=250 (short: 48) — one goroutine per logical processor
// with placed communication realized as channel transfers. The engine
// is built once and warmed outside the timer, so the loop measures
// steady-state execution: recycled message buffers and per-processor
// scratch in play, setup (memory image, plan, fabric) excluded.
// Compare against BenchmarkParallelSimulation's sub-benchmarks to see
// real execution against modeled simulation on identical placements.
func BenchmarkNativeExecution(b *testing.B) {
	n := 250
	if testing.Short() {
		n = 48
	}
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		b.Fatal(err)
	}
	a, err := pr.Compile(n, 25)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := native.NewEngine(res, 25)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(); err != nil { // warm pools and scratch
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	var msgs, wire int64
	for i := 0; i < b.N; i++ {
		out, err := eng.Run()
		if err != nil {
			b.Fatal(err)
		}
		msgs = out.Stats.Messages
		wire = out.Stats.WireBytes
	}
	b.ReportMetric(float64(msgs), "messages")
	b.ReportMetric(float64(wire), "wirebytes")
}

// BenchmarkNativeAlloc is the allocation budget the native-smoke CI
// target gates on: gravity at P=16 (short-friendly n=48), steady-state
// engine reuse. The recycled fabric and hoisted scratch are the point,
// so allocs/op here regressing means a hot path started allocating
// again; ci/native-alloc-budget.txt holds the ceiling `make
// native-smoke` enforces with -benchmem.
func BenchmarkNativeAlloc(b *testing.B) {
	pr, err := bench.ByName("gravity", "main")
	if err != nil {
		b.Fatal(err)
	}
	a, err := pr.Compile(48, 16)
	if err != nil {
		b.Fatal(err)
	}
	res, err := a.Place(core.Options{Version: core.VersionCombine})
	if err != nil {
		b.Fatal(err)
	}
	eng, err := native.NewEngine(res, 16)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := eng.Run(); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Run(); err != nil {
			b.Fatal(err)
		}
	}
}
