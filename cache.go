package gcao

import (
	"strconv"

	"gcao/internal/cache"
)

// CacheTierStats re-exports one cache tier's snapshot: occupancy,
// bounds, and hit/miss/dedup/eviction counters.
type CacheTierStats = cache.Stats

// CacheStats is the two-tier snapshot of a compilation cache.
type CacheStats struct {
	Compile CacheTierStats `json:"compile"`
	Place   CacheTierStats `json:"place"`
}

// CacheOutcome reports how a cached operation was satisfied: a miss
// computed the value, a hit found it resident, a dedup coalesced onto
// a concurrent identical computation (singleflight).
type CacheOutcome = cache.Outcome

// Cache outcome values.
const (
	CacheMiss  = cache.Miss
	CacheHit   = cache.Hit
	CacheDedup = cache.Wait
)

// CacheOptions sizes a compilation cache. Zero values pick the
// defaults: 1024 entries and 256 MiB per tier, sharded 16 ways.
type CacheOptions struct {
	// MaxEntries bounds each tier's entry count.
	MaxEntries int
	// MaxBytes bounds each tier's estimated resident size; negative
	// disables the byte bound.
	MaxBytes int64
	// Shards sets the lock-striping width.
	Shards int
}

// Cache is a content-addressed compilation cache: analysis results and
// placement outcomes are stored in two separate tiers, keyed by
// canonical SHA-256 fingerprints of everything that determines the
// output (source text, entry routine, parameter binding, processor
// count; plus strategy and placement options for the placement tier).
// Identical concurrent requests are deduplicated so N callers trigger
// exactly one compile — the paper's redundancy-elimination discipline
// applied to the compiler itself.
//
// A cached *Compilation is shared by every request that hits it, which
// is safe: after analysis, placement and simulation only read the
// analysis. Callers pass a per-request Recorder to Place (and
// Placed.SimulateObs) for telemetry, since the cached analysis has no
// recorder of its own.
type Cache struct {
	compile *cache.Cache
	place   *cache.Cache
}

// NewCache builds an empty two-tier compilation cache.
func NewCache(opt CacheOptions) *Cache {
	if opt.MaxEntries <= 0 {
		opt.MaxEntries = 1024
	}
	if opt.MaxBytes == 0 {
		opt.MaxBytes = 256 << 20
	}
	if opt.Shards <= 0 {
		opt.Shards = 16
	}
	return &Cache{
		compile: cache.New(opt.MaxEntries, opt.MaxBytes, opt.Shards),
		place:   cache.New(opt.MaxEntries, opt.MaxBytes, opt.Shards),
	}
}

// Compile is the cached variant of the package-level Compile. On a
// miss the routine is compiled with cfg (whose Recorder receives the
// pipeline telemetry) and the analysis is cached under the content
// fingerprint of (source, params, procs); hits and deduplicated calls
// return the shared analysis without recompiling. The outcome is also
// counted on cfg.Obs as cache.compile.<hit|miss|dedup>.
func (c *Cache) Compile(source string, cfg Config) (*Compilation, CacheOutcome, error) {
	return c.compileKeyed(source, "", cfg)
}

// CompileProgram is the cached variant of the package-level
// CompileProgram; the entry routine name participates in the
// fingerprint, so the same program text compiled from two different
// main routines occupies two distinct entries.
func (c *Cache) CompileProgram(source, main string, cfg Config) (*Compilation, CacheOutcome, error) {
	return c.compileKeyed(source, main, cfg)
}

func (c *Cache) compileKeyed(source, main string, cfg Config) (*Compilation, CacheOutcome, error) {
	fp := cache.Fingerprint("gcao-compile-v1",
		source, main, cache.CanonParams(cfg.Params), strconv.Itoa(cfg.Procs))
	v, out, err := c.compile.Do(fp, compilationSize, func() (any, error) {
		var (
			comp *Compilation
			err  error
		)
		if main == "" {
			comp, err = Compile(source, cfg)
		} else {
			comp, err = CompileProgram(source, main, cfg)
		}
		if err != nil {
			return nil, err
		}
		// Detach the building request's recorder: the cached analysis
		// outlives the request, and every later placement or simulation
		// passes its own recorder explicitly.
		comp.Analysis.Obs = nil
		comp.fingerprint = fp
		return comp, nil
	})
	cfg.Obs.Add("cache.compile."+out.String(), 1)
	if err != nil {
		return nil, out, err
	}
	return v.(*Compilation), out, nil
}

// Place is the cached variant of Compilation.PlaceOptions for
// compilations produced by this cache: the placement is keyed by the
// compilation's fingerprint plus strategy and options, so repeated
// requests reuse the placed result without re-running the global
// algorithm. rec receives the placement telemetry when the placement
// actually runs (on a hit the work — and its telemetry — happened in
// an earlier request) and the outcome counter either way. A
// compilation that did not come from a cache is placed directly and
// reported as a miss.
func (c *Cache) Place(comp *Compilation, s Strategy, opt PlacementOptions, rec *Recorder) (*Placed, CacheOutcome, error) {
	if comp.fingerprint == "" {
		p, err := comp.placeObs(s, opt, rec)
		return p, CacheMiss, err
	}
	key := cache.Fingerprint("gcao-place-v1", comp.fingerprint, s.String(), opt.canon())
	v, out, err := c.place.Do(key, placedSize, func() (any, error) {
		return comp.placeObs(s, opt, rec)
	})
	rec.Add("cache.place."+out.String(), 1)
	if err != nil {
		return nil, out, err
	}
	return v.(*Placed), out, nil
}

// Stats snapshots both tiers.
func (c *Cache) Stats() CacheStats {
	return CacheStats{Compile: c.compile.Stats(), Place: c.place.Stats()}
}

// compilationSize estimates the resident cost of a cached analysis for
// the byte bound. The analysis holds the scalarized body, CFG, SSA and
// per-entry descriptors; the estimate charges a fixed overhead plus a
// per-statement and per-entry share, which tracks the real footprint
// closely enough for an admission bound.
func compilationSize(v any) int64 {
	a := v.(*Compilation).Analysis
	n := int64(8 << 10)
	n += int64(len(a.G.Stmts)) * 512
	n += int64(len(a.Entries)) * 2048
	return n
}

// placedSize estimates the resident cost of a cached placement.
func placedSize(v any) int64 {
	res := v.(*Placed).Result
	n := int64(1 << 10)
	n += int64(len(res.Groups)) * 512
	n += int64(len(res.PosOf)) * 128
	return n
}
