package gcao_test

import (
	"strings"
	"testing"

	"gcao"
	"gcao/internal/spmd"
)

const apiSrc = `
routine relax(n, steps)
real a(n, n), b(n, n)
!hpf$ distribute (block, block) :: a, b
do i = 1, n
do j = 1, n
a(i, j) = i + j
b(i, j) = 0
enddo
enddo
do it = 1, steps
do i = 2, n - 1
do j = 2, n - 1
b(i, j) = a(i - 1, j) + a(i + 1, j) + b(i, j)
enddo
enddo
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = b(i, j) * 0.5
enddo
enddo
enddo
end
`

func TestPublicAPI(t *testing.T) {
	cfg := gcao.Config{Params: map[string]int{"n": 12, "steps": 2}, Procs: 4}
	c, err := gcao.Compile(apiSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Entries()) != 2 {
		t.Fatalf("entries = %d, want 2 (a up and down)", len(c.Entries()))
	}

	orig, err := c.Place(gcao.Vectorize)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := c.Place(gcao.Combine)
	if err != nil {
		t.Fatal(err)
	}
	if comb.Messages() > orig.Messages() {
		t.Errorf("comb %d messages > orig %d", comb.Messages(), orig.Messages())
	}

	run, err := comb.Simulate(gcao.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if run.Ledger.DynMessages == 0 {
		t.Error("expected dynamic messages")
	}
	if err := comb.Verify(apiSrc, cfg, gcao.SP2(), 4); err != nil {
		t.Fatal(err)
	}

	cost, err := comb.Estimate(gcao.NOW())
	if err != nil {
		t.Fatal(err)
	}
	if cost.Total() <= 0 || cost.Net <= 0 {
		t.Errorf("cost = %+v", cost)
	}

	bars, err := c.CompareStrategies(gcao.SP2())
	if err != nil {
		t.Fatal(err)
	}
	if len(bars) != 3 || bars[2].Net > bars[0].Net {
		t.Errorf("bars = %+v", bars)
	}
}

func TestStrategyStrings(t *testing.T) {
	if gcao.Vectorize.String() != "orig" ||
		gcao.EarliestRedundancy.String() != "nored" ||
		gcao.Combine.String() != "comb" {
		t.Error("strategy names must match the paper's table")
	}
}

func TestPlacementOptions(t *testing.T) {
	cfg := gcao.Config{Params: map[string]int{"n": 12, "steps": 1}, Procs: 4}
	c, err := gcao.Compile(apiSrc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	off, err := c.PlaceOptions(gcao.Combine, gcao.PlacementOptions{DisableCombining: true})
	if err != nil {
		t.Fatal(err)
	}
	on, err := c.Place(gcao.Combine)
	if err != nil {
		t.Fatal(err)
	}
	if off.Messages() < on.Messages() {
		t.Errorf("combining disabled yielded fewer messages (%d) than enabled (%d)", off.Messages(), on.Messages())
	}
}

func TestCompileErrors(t *testing.T) {
	if _, err := gcao.Compile("routine f(\n", gcao.Config{}); err == nil {
		t.Error("parse error must propagate")
	}
	_, err := gcao.Compile(apiSrc, gcao.Config{Params: map[string]int{"n": 8}, Procs: 4})
	if err == nil || !strings.Contains(err.Error(), "steps") {
		t.Errorf("missing parameter must be reported: %v", err)
	}
}

func TestMachineByName(t *testing.T) {
	if _, err := gcao.MachineByName("SP2"); err != nil {
		t.Error(err)
	}
	if _, err := gcao.MachineByName("paragon"); err == nil {
		t.Error("unknown machine must fail")
	}
}

const interprocSrc = `
routine main(n, steps)
real a(n, n), b(n, n), ra(n, n), rb(n, n)
!hpf$ distribute (block, block) :: a, b, ra, rb
do i = 1, n
do j = 1, n
a(i, j) = i + 2 * j
b(i, j) = 3 * i - j
ra(i, j) = 0
rb(i, j) = 0
enddo
enddo
do it = 1, steps
call relaxstep(a, ra, n)
call relaxstep(b, rb, n)
do i = 2, n - 1
do j = 2, n - 1
a(i, j) = a(i, j) + 0.1 * ra(i, j)
b(i, j) = b(i, j) + 0.1 * rb(i, j)
enddo
enddo
enddo
end

routine relaxstep(q, r, n)
real q(n, n), r(n, n)
do i = 2, n - 1
do j = 2, n - 1
r(i, j) = q(i - 1, j) + q(i + 1, j) + q(i, j - 1) + q(i, j + 1) - 4 * q(i, j)
enddo
enddo
end
`

// TestInterprocedural exercises the §7 interprocedural direction:
// after inlining, the global algorithm combines the exchanges of the
// two relaxstep invocations across the former procedure boundary
// (a and b travel together per direction), and the result is verified
// functionally.
func TestInterprocedural(t *testing.T) {
	cfg := gcao.Config{Params: map[string]int{"n": 12, "steps": 2}, Procs: 4}
	c, err := gcao.CompileProgram(interprocSrc, "main", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(c.Entries()); got != 8 {
		t.Fatalf("entries = %d, want 8 (2 arrays x 4 directions)", got)
	}
	orig, err := c.Place(gcao.Vectorize)
	if err != nil {
		t.Fatal(err)
	}
	comb, err := c.Place(gcao.Combine)
	if err != nil {
		t.Fatal(err)
	}
	if orig.Messages() != 8 {
		t.Errorf("orig = %d messages, want 8", orig.Messages())
	}
	if comb.Messages() != 4 {
		for _, g := range comb.Result.Groups {
			t.Logf("%v", g)
		}
		t.Errorf("comb = %d messages, want 4 (cross-procedure combining)", comb.Messages())
	}
	// Each combined exchange carries both arrays.
	for _, g := range comb.Result.Groups {
		arrays := map[string]bool{}
		for _, e := range g.Entries {
			arrays[e.Array] = true
		}
		if !arrays["a"] || !arrays["b"] {
			t.Errorf("group %v does not span the two call sites", g)
		}
	}
	// Functional verification: the parallel run matches a sequential
	// one (compile the flattened program at P=1 independently).
	run, err := comb.Simulate(gcao.SP2(), 4)
	if err != nil {
		t.Fatal(err)
	}
	seqCfg := cfg
	seqCfg.Procs = 1
	seqC, err := gcao.CompileProgram(interprocSrc, "main", seqCfg)
	if err != nil {
		t.Fatal(err)
	}
	seqP, err := seqC.Place(gcao.Combine)
	if err != nil {
		t.Fatal(err)
	}
	seq, err := seqP.Simulate(gcao.SP2(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := spmd.VerifyAgainstSequential(run, seq); err != nil {
		t.Fatal(err)
	}
}
